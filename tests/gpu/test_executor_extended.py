"""Extended executor coverage: f64, atomics variants, local memory,
division semantics, special registers — run on both engines."""

import math

import numpy as np
import pytest

from repro.gpu.executor import KernelExecutor, compile_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.ptx.ast import Immediate, MemRef
from repro.ptx.builder import KernelBuilder

SPEC = QUADRO_RTX_A4000
BASE = 0x7F_A000_0000_00


@pytest.fixture(params=[False, True], ids=["interpreter", "jit"])
def run(request):
    def runner(kernel, grid, block, params, setup=None):
        memory = GlobalMemory(1 << 22)
        if setup:
            setup(memory)
        executor = KernelExecutor(SPEC, memory,
                                  use_codegen=request.param)
        compiled = compile_kernel(kernel, SPEC)
        result = executor.launch(compiled, grid, block, params)
        return memory, result

    return runner


class TestFloat64:
    def test_f64_arithmetic(self, run):
        b = KernelBuilder("f64ops", params=[("out", "u64")])
        out = b.load_param_ptr("out")
        x = b.mov("f64", Immediate(1.25))
        y = b.mul("f64", x, Immediate(3.0))
        z = b.add("f64", y, Immediate(0.0625))
        b.st_global("f64", out, z)
        memory, _ = run(b.build(), (1, 1, 1), (1, 1, 1), [BASE])
        assert memory.load_scalar(BASE, "f64") == 1.25 * 3.0 + 0.0625

    def test_f64_load_store_roundtrip(self, run):
        b = KernelBuilder("f64copy", params=[("dst", "u64"),
                                             ("src", "u64")])
        dst = b.load_param_ptr("dst")
        src = b.load_param_ptr("src")
        b.st_global("f64", dst, b.ld_global("f64", src))

        def setup(memory):
            memory.store_scalar(BASE + 1024, "f64", math.pi)

        memory, _ = run(b.build(), (1, 1, 1), (1, 1, 1),
                        [BASE, BASE + 1024], setup)
        assert memory.load_scalar(BASE, "f64") == math.pi


class TestAtomics:
    def _atomic_kernel(self, mode):
        b = KernelBuilder("atomics", params=[("target", "u64"),
                                             ("value", "u32")])
        target = b.load_param_ptr("target")
        value = b.load_param("value", "u32")
        dest = b.reg("u32")
        b.emit(f"atom.global.{mode}.u32", dest, MemRef(target), value)
        return b.build()

    def test_atom_max(self, run):
        def setup(memory):
            memory.store_scalar(BASE, "u32", 50)

        memory, _ = run(self._atomic_kernel("max"), (1, 1, 1),
                        (1, 1, 1), [BASE, 99], setup)
        assert memory.load_scalar(BASE, "u32") == 99

    def test_atom_min(self, run):
        def setup(memory):
            memory.store_scalar(BASE, "u32", 50)

        memory, _ = run(self._atomic_kernel("min"), (1, 1, 1),
                        (1, 1, 1), [BASE, 7], setup)
        assert memory.load_scalar(BASE, "u32") == 7

    def test_atom_exch(self, run):
        def setup(memory):
            memory.store_scalar(BASE, "u32", 123)

        memory, _ = run(self._atomic_kernel("exch"), (1, 1, 1),
                        (1, 1, 1), [BASE, 456], setup)
        assert memory.load_scalar(BASE, "u32") == 456

    def test_atomic_add_many_threads_exact(self, run):
        b = KernelBuilder("count", params=[("counter", "u64")])
        counter = b.load_param_ptr("counter")
        b.atom_add_global("u32", counter, 1)
        memory, _ = run(b.build(), (4, 1, 1), (64, 1, 1), [BASE])
        assert memory.load_scalar(BASE, "u32") == 256


class TestLocalMemory:
    def test_local_roundtrip(self, run):
        b = KernelBuilder("locals", params=[("out", "u64")])
        out = b.load_param_ptr("out")
        address = b.mov("u64", Immediate(64))
        value = b.mov("f32", Immediate(2.5))
        b.emit("st.local.f32", MemRef(address), value)
        loaded = b.reg("f32")
        b.emit("ld.local.f32", loaded, MemRef(address))
        b.st_global("f32", out, loaded)
        memory, _ = run(b.build(), (1, 1, 1), (1, 1, 1), [BASE])
        assert memory.load_scalar(BASE, "f32") == 2.5

    def test_local_private_per_thread(self, run):
        """Each thread's local buffer is its own: thread i writes i and
        reads back i even though all use local offset 0."""
        b = KernelBuilder("priv", params=[("out", "u64")])
        out = b.load_param_ptr("out")
        tid = b.special("%tid.x")
        zero_addr = b.mov("u64", Immediate(0))
        b.emit("st.local.u32", MemRef(zero_addr), tid)
        loaded = b.reg("u32")
        b.emit("ld.local.u32", loaded, MemRef(zero_addr))
        b.st_global("u32", b.element_addr(out, tid, 4), loaded)
        memory, _ = run(b.build(), (1, 1, 1), (16, 1, 1), [BASE])
        out = memory.read_array(BASE, 16, dtype="u32")
        assert np.array_equal(out, np.arange(16, dtype=np.uint32))


class TestDivisionSemantics:
    def test_signed_division_truncates_toward_zero(self, run):
        b = KernelBuilder("sdiv", params=[("out", "u64")])
        out = b.load_param_ptr("out")
        q = b.div("s32", Immediate(-7), Immediate(2))  # PTX: -3
        b.st_global("s32", out, q)
        memory, _ = run(b.build(), (1, 1, 1), (1, 1, 1), [BASE])
        assert memory.load_scalar(BASE, "s32") == -3

    def test_signed_remainder_sign(self, run):
        b = KernelBuilder("srem", params=[("out", "u64")])
        out = b.load_param_ptr("out")
        r = b.rem("s32", Immediate(-7), Immediate(2))  # PTX: -1
        b.st_global("s32", out, r)
        memory, _ = run(b.build(), (1, 1, 1), (1, 1, 1), [BASE])
        assert memory.load_scalar(BASE, "s32") == -1

    def test_unsigned_division(self, run):
        b = KernelBuilder("udiv", params=[("out", "u64")])
        out = b.load_param_ptr("out")
        q = b.div("u32", Immediate(100), Immediate(7))
        b.st_global("u32", out, q)
        memory, _ = run(b.build(), (1, 1, 1), (1, 1, 1), [BASE])
        assert memory.load_scalar(BASE, "u32") == 14


class TestSpecialRegisters:
    def test_all_dims_visible(self, run):
        b = KernelBuilder("dims", params=[("out", "u64")])
        out = b.load_param_ptr("out")
        values = [
            b.special("%tid.x"), b.special("%tid.y"),
            b.special("%ntid.x"), b.special("%ntid.y"),
            b.special("%ctaid.x"), b.special("%nctaid.x"),
            b.special("%laneid"), b.special("%warpid"),
        ]
        for index, value in enumerate(values):
            b.st_global("u32", out, value, offset=4 * index)
        memory, _ = run(b.build(), (3, 1, 1), (4, 2, 1), [BASE])
        # The last block/thread to execute writes (tid 3,1 of block 2).
        out = memory.read_array(BASE, 8, dtype="u32")
        assert out[2] == 4      # ntid.x
        assert out[3] == 2      # ntid.y
        assert out[5] == 3      # nctaid.x

    def test_grid_coverage_unique(self, run):
        """Every (block, thread) combination writes its own slot —
        the grid enumeration is complete and distinct."""
        b = KernelBuilder("cover", params=[("out", "u64")])
        out = b.load_param_ptr("out")
        gid = b.global_thread_id()
        b.st_global("u32", b.element_addr(out, gid, 4),
                    b.add("u32", gid, Immediate(1)))
        memory, _ = run(b.build(), (4, 1, 1), (32, 1, 1), [BASE])
        values = memory.read_array(BASE, 128, dtype="u32")
        assert np.array_equal(values,
                              np.arange(1, 129, dtype=np.uint32))


class TestMinMaxFloat:
    def test_float_min_max(self, run):
        b = KernelBuilder("mm", params=[("out", "u64")])
        out = b.load_param_ptr("out")
        lo = b.min_("f32", Immediate(2.0), Immediate(-3.0))
        hi = b.max_("f32", Immediate(2.0), Immediate(-3.0))
        b.st_global("f32", out, lo)
        b.st_global("f32", out, hi, offset=4)
        memory, _ = run(b.build(), (1, 1, 1), (1, 1, 1), [BASE])
        assert memory.load_scalar(BASE, "f32") == -3.0
        assert memory.load_scalar(BASE + 4, "f32") == 2.0
