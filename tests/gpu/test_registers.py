"""Register allocation / spill modelling tests (Fig. 10 substrate)."""

from repro.core.patcher import PTXPatcher
from repro.core.policy import FencingMode
from repro.gpu.registers import allocate, extra_registers
from repro.ptx.ast import Immediate
from repro.ptx.builder import KernelBuilder

from tests.conftest import saxpy_kernel


class TestAllocation:
    def test_o0_counts_every_virtual_register(self):
        kernel = saxpy_kernel()
        allocation = allocate(kernel, opt_level="O0")
        # O0: no reuse — slots equal the summed widths of all
        # non-predicate virtual registers.
        assert allocation.physical_slots >= allocation.virtual_regs

    def test_o3_never_exceeds_o0(self):
        kernel = saxpy_kernel()
        o0 = allocate(kernel, opt_level="O0")
        o3 = allocate(kernel, opt_level="O3")
        assert o3.physical_slots <= o0.physical_slots

    def test_64bit_registers_take_two_slots(self):
        b = KernelBuilder("k", params=[("p", "u64")])
        pointer = b.load_param("p", "u64")  # one b64 register
        b.st_global("u32", pointer, 7)
        allocation = allocate(b.build(), opt_level="O0")
        assert allocation.physical_slots == 2

    def test_predicates_not_in_budget(self):
        b = KernelBuilder("k", params=[])
        value = b.mov("u32", Immediate(1))
        b.setp("eq", "u32", value, Immediate(1))
        allocation = allocate(b.build(), opt_level="O0")
        assert allocation.predicate_regs == 1
        assert allocation.physical_slots == 1  # only the b32

    def test_dead_register_reused_at_o3(self):
        """The Fig. 10 effect: registers with disjoint live ranges share
        a physical register under O3, so extra virtual registers can be
        free."""
        b = KernelBuilder("k", params=[("p", "u64")])
        pointer = b.load_param("p", "u64")
        early = b.mov("u32", Immediate(1))        # dies immediately
        b.st_global("u32", pointer, early)
        late = b.mov("u32", Immediate(2))         # lives after 'early'
        b.st_global("u32", pointer, late)
        o3 = allocate(b.build(), opt_level="O3")
        o0 = allocate(b.build(), opt_level="O0")
        assert o3.physical_slots < o0.physical_slots

    def test_spill_detection(self):
        b = KernelBuilder("k", params=[("p", "u64")])
        pointer = b.load_param("p", "u64")
        # 300 simultaneously-live registers exceed the 255 budget.
        regs = [b.mov("u32", Immediate(i)) for i in range(300)]
        for reg in regs:
            b.st_global("u32", pointer, reg)
        allocation = allocate(b.build(), 255, "O3")
        assert allocation.spills
        assert allocation.spilled_slots > 0

    def test_constant_bytes_counts_params(self):
        kernel = saxpy_kernel()
        allocation = allocate(kernel)
        # u64 + u64 + f32 + u32 = 24 bytes
        assert allocation.constant_bytes == 24


class TestFencingRegisterPressure:
    """The paper's claim: bitwise fencing needs only ~2 extra registers
    and rarely increases the O3 allocation (Fig. 10(b): 71% of kernels
    +0 registers)."""

    def test_sandboxed_constant_memory_grows_16_bytes(self):
        kernel = saxpy_kernel()
        patched, _ = PTXPatcher(FencingMode.BITWISE).patch_kernel(kernel)
        native = allocate(kernel)
        sandboxed = allocate(patched)
        assert sandboxed.constant_bytes - native.constant_bytes == 16

    def test_extra_registers_bounded_at_o0(self):
        kernel = saxpy_kernel()
        patched, _ = PTXPatcher(FencingMode.BITWISE).patch_kernel(kernel)
        native = allocate(kernel, opt_level="O0")
        sandboxed = allocate(patched, opt_level="O0")
        # base + mask = two b64 registers = 4 slots at O0.
        assert 0 <= extra_registers(native, sandboxed) <= 6

    def test_extra_registers_smaller_at_o3(self):
        kernel = saxpy_kernel()
        patched, _ = PTXPatcher(FencingMode.BITWISE).patch_kernel(kernel)
        o0_extra = extra_registers(
            allocate(kernel, opt_level="O0"),
            allocate(patched, opt_level="O0"),
        )
        o3_extra = extra_registers(
            allocate(kernel, opt_level="O3"),
            allocate(patched, opt_level="O3"),
        )
        assert o3_extra <= o0_extra
