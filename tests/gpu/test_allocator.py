"""First-fit allocator tests (the native cudaMalloc substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError
from repro.gpu.allocator import FirstFitAllocator

BASE = 0x1000_0000


class TestBasics:
    def test_allocations_disjoint(self):
        allocator = FirstFitAllocator(BASE, 1 << 20)
        a = allocator.allocate(1000)
        b = allocator.allocate(1000)
        assert abs(a - b) >= 1000

    def test_alignment(self):
        allocator = FirstFitAllocator(BASE, 1 << 20, alignment=256)
        for _ in range(5):
            assert allocator.allocate(100) % 256 == 0

    def test_free_and_reuse(self):
        allocator = FirstFitAllocator(BASE, 4096)
        a = allocator.allocate(4096)
        with pytest.raises(AllocationError):
            allocator.allocate(1)
        allocator.free(a)
        assert allocator.allocate(4096) == a

    def test_coalescing(self):
        allocator = FirstFitAllocator(BASE, 3 * 256)
        a = allocator.allocate(256)
        b = allocator.allocate(256)
        c = allocator.allocate(256)
        allocator.free(a)
        allocator.free(c)
        allocator.free(b)  # middle free must merge all three
        assert allocator.allocate(3 * 256) == BASE

    def test_double_free_rejected(self):
        allocator = FirstFitAllocator(BASE, 4096)
        a = allocator.allocate(128)
        allocator.free(a)
        with pytest.raises(AllocationError):
            allocator.free(a)

    def test_free_of_garbage_rejected(self):
        allocator = FirstFitAllocator(BASE, 4096)
        with pytest.raises(AllocationError):
            allocator.free(BASE + 64)

    def test_oom_message_mentions_free_bytes(self):
        allocator = FirstFitAllocator(BASE, 1024)
        allocator.allocate(512)
        with pytest.raises(AllocationError, match="free"):
            allocator.allocate(1024)

    def test_zero_allocation_rejected(self):
        allocator = FirstFitAllocator(BASE, 4096)
        with pytest.raises(AllocationError):
            allocator.allocate(0)

    def test_accounting(self):
        allocator = FirstFitAllocator(BASE, 1 << 16)
        allocator.allocate(1000)
        assert allocator.bytes_in_use == 1024  # rounded to alignment
        assert allocator.bytes_free == (1 << 16) - 1024
        assert allocator.live_allocations == 1


class TestProperties:
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(1, 5000)),
            min_size=1, max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_invariants_under_random_workload(self, ops):
        """Live allocations never overlap; accounting always balances."""
        allocator = FirstFitAllocator(BASE, 1 << 18)
        live: list[tuple[int, int]] = []
        for is_alloc, size in ops:
            if is_alloc or not live:
                try:
                    addr = allocator.allocate(size)
                except AllocationError:
                    continue
                rounded = allocator.allocation_size(addr)
                for other_addr, other_size in live:
                    assert (addr + rounded <= other_addr
                            or other_addr + other_size <= addr)
                assert BASE <= addr
                assert addr + rounded <= BASE + (1 << 18)
                live.append((addr, rounded))
            else:
                addr, size = live.pop()
                allocator.free(addr)
            assert allocator.bytes_in_use == sum(s for _, s in live)
        # Tear down everything: the allocator must return to pristine.
        for addr, _ in live:
            allocator.free(addr)
        assert allocator.bytes_in_use == 0
        assert allocator.allocate(1 << 18) == BASE
