"""Global memory tests: sparse backing, typed access, fault fencing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryFault
from repro.gpu.memory import DEVICE_BASE, PAGE_SIZE, GlobalMemory


@pytest.fixture
def memory():
    return GlobalMemory(1 << 22)


class TestBulkAccess:
    def test_roundtrip(self, memory):
        memory.write(memory.base + 100, b"hello world")
        assert memory.read(memory.base + 100, 11) == b"hello world"

    def test_zero_initialised(self, memory):
        assert memory.read(memory.base + 5000, 16) == b"\x00" * 16

    def test_cross_page_write(self, memory):
        addr = memory.base + PAGE_SIZE - 3
        memory.write(addr, b"ABCDEFGH")
        assert memory.read(addr, 8) == b"ABCDEFGH"

    def test_fill(self, memory):
        memory.fill(memory.base, 64, 0xAB)
        assert memory.read(memory.base, 64) == b"\xab" * 64

    def test_read_below_base_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.read(memory.base - 1, 4)

    def test_read_past_limit_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.read(memory.limit - 2, 4)

    def test_write_fault_reports_address(self, memory):
        with pytest.raises(MemoryFault) as excinfo:
            memory.write(memory.limit, b"x")
        assert excinfo.value.address == memory.limit

    def test_sparse_backing_stays_sparse(self):
        # A "16 GB" device must not materialise 16 GB of host RAM.
        big = GlobalMemory(16 << 30)
        big.write(big.base + (8 << 30), b"data in the middle")
        assert big.resident_bytes <= 2 * PAGE_SIZE


class TestArrays:
    def test_float_array_roundtrip(self, memory):
        values = np.arange(100, dtype=np.float32)
        memory.write_array(memory.base, values)
        out = memory.read_array(memory.base, 100)
        assert np.array_equal(values, out)

    def test_u32_array(self, memory):
        values = np.array([1, 2, 2**31], dtype=np.uint32)
        memory.write_array(memory.base, values, dtype="u32")
        assert np.array_equal(
            memory.read_array(memory.base, 3, dtype="u32"), values
        )


class TestScalars:
    @pytest.mark.parametrize("dtype,value", [
        ("u8", 200), ("s8", -100), ("u16", 60000), ("s16", -30000),
        ("u32", 4_000_000_000), ("s32", -2_000_000_000),
        ("u64", 2**63 + 5), ("s64", -(2**62)),
        ("f32", 1.5), ("f64", -2.25),
    ])
    def test_scalar_roundtrip(self, memory, dtype, value):
        memory.store_scalar(memory.base + 64, dtype, value)
        assert memory.load_scalar(memory.base + 64, dtype) == value

    def test_unsigned_wraps(self, memory):
        memory.store_scalar(memory.base, "u32", 2**32 + 7)
        assert memory.load_scalar(memory.base, "u32") == 7

    def test_signed_wraps(self, memory):
        memory.store_scalar(memory.base, "s32", 2**31)
        assert memory.load_scalar(memory.base, "s32") == -(2**31)

    def test_scalar_at_page_boundary(self, memory):
        addr = memory.base + PAGE_SIZE - 2
        memory.store_scalar(addr, "u32", 0xDEADBEEF)
        assert memory.load_scalar(addr, "u32") == 0xDEADBEEF


class TestPropertyRoundtrip:
    @given(
        offset=st.integers(min_value=0, max_value=(1 << 22) - 64),
        data=st.binary(min_size=1, max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_write_reads_back(self, offset, data):
        memory = GlobalMemory(1 << 22)
        memory.write(memory.base + offset, data)
        assert memory.read(memory.base + offset, len(data)) == data

    @given(
        a=st.integers(min_value=0, max_value=1000),
        b=st.integers(min_value=2000, max_value=3000),
        data=st.binary(min_size=1, max_size=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_disjoint_writes_independent(self, a, b, data):
        memory = GlobalMemory(1 << 20)
        memory.write(memory.base + b, b"\x55" * 100)
        memory.write(memory.base + a, data)
        assert memory.read(memory.base + b, 100) == b"\x55" * 100


def test_device_base_looks_like_paper_pointers():
    # The paper's Fig. 5 uses 0x7f... user-space-style addresses.
    assert hex(DEVICE_BASE).startswith("0x7fa")
