"""Property-based timeline scheduler tests.

Scheduling invariants that must hold for *any* task set:

- work conservation: makespan >= total SM work / capacity;
- no time travel: makespan >= every task's solo duration and release;
- spatial sharing never loses to time sharing on the same tasks;
- every task finishes exactly once.
"""

from hypothesis import given, settings, strategies as st

from repro.gpu.timeline import GpuTask, Timeline

CAPACITY = 100


@st.composite
def task_sets(draw):
    count = draw(st.integers(min_value=1, max_value=14))
    tasks = []
    for index in range(count):
        context = draw(st.integers(min_value=1, max_value=3))
        stream = draw(st.integers(min_value=1, max_value=2))
        kind = draw(st.sampled_from(["kernel", "kernel", "kernel",
                                     "h2d", "d2h"]))
        tasks.append(GpuTask(
            kind=kind,
            context_id=context,
            stream_key=(context, stream),
            work_cycles=draw(st.floats(min_value=1, max_value=50_000)),
            demand=draw(st.integers(min_value=1, max_value=200))
            if kind == "kernel" else 0,
            fixed_cycles=draw(st.sampled_from([0.0, 10.0, 500.0])),
            tag=f"app{context}",
            release=draw(st.sampled_from([0.0, 0.0, 100.0, 5_000.0])),
        ))
    return tasks


def clone(tasks):
    return [GpuTask(
        kind=t.kind, context_id=t.context_id, stream_key=t.stream_key,
        work_cycles=t.work_cycles, demand=t.demand,
        fixed_cycles=t.fixed_cycles, tag=t.tag, release=t.release,
    ) for t in tasks]


class TestSchedulerInvariants:
    @given(task_sets())
    @settings(max_examples=120, deadline=None)
    def test_work_conservation(self, tasks):
        result = Timeline(CAPACITY, spatial=True).run(clone(tasks))
        sm_work = sum(
            t.work_cycles + t.fixed_cycles * max(t.demand, 1)
            for t in tasks if t.kind == "kernel"
        )
        assert result.makespan_cycles >= sm_work / CAPACITY - 1e-6

    @given(task_sets())
    @settings(max_examples=120, deadline=None)
    def test_solo_duration_lower_bound(self, tasks):
        result = Timeline(CAPACITY, spatial=True).run(clone(tasks))
        for task in tasks:
            if task.kind == "kernel":
                solo = (task.work_cycles / min(max(task.demand, 1),
                                               CAPACITY)
                        + task.fixed_cycles)
            else:
                solo = task.work_cycles + task.fixed_cycles
            assert result.makespan_cycles >= solo - 1e-6

    @given(task_sets())
    @settings(max_examples=100, deadline=None)
    def test_releases_respected(self, tasks):
        copies = clone(tasks)
        result = Timeline(CAPACITY, spatial=True).run(copies)
        for task in copies:
            assert result.task_finish[task.seq] >= task.release - 1e-6

    @given(task_sets())
    @settings(max_examples=80, deadline=None)
    def test_spatial_never_loses_to_timeshare(self, tasks):
        """Spatial sharing beats time sharing up to a bounded greedy
        anomaly.

        Both schedulers are greedy list schedulers, and greedy
        schedules are not optimal: giving spatial more concurrency can
        occasionally delay the task that happens to determine the
        makespan (the classic Graham scheduling anomaly). The anomaly
        is bounded by one task's solo duration, so we assert dominance
        up to that slack rather than absolutely.
        """
        spatial = Timeline(CAPACITY, context_switch_cycles=1000,
                           spatial=True).run(clone(tasks))
        shared = Timeline(CAPACITY, context_switch_cycles=1000,
                          spatial=False).run(clone(tasks))
        max_solo = max(
            (t.work_cycles / max(min(t.demand, CAPACITY), 1)
             if t.kind == "kernel" else t.work_cycles)
            + t.fixed_cycles
            for t in tasks
        )
        assert (spatial.makespan_cycles
                <= shared.makespan_cycles + max_solo + 1e-6)

    @given(task_sets())
    @settings(max_examples=80, deadline=None)
    def test_every_task_finishes_once(self, tasks):
        copies = clone(tasks)
        result = Timeline(CAPACITY, spatial=True).run(copies)
        assert set(result.task_finish) == {t.seq for t in copies}
        for tag in {t.tag for t in copies}:
            last = max(result.task_finish[t.seq] for t in copies
                       if t.tag == tag)
            assert result.completion_by_tag[tag] == last

    @given(task_sets(), st.floats(min_value=0, max_value=1e6))
    @settings(max_examples=60, deadline=None)
    def test_start_offset_is_pure_translation(self, tasks, start):
        """Running at a global start offset shifts nothing in the
        reported (relative) times when no release falls inside the
        shifted window."""
        shifted = clone(tasks)
        for task in shifted:
            task.release += start
        base = Timeline(CAPACITY, spatial=True).run(clone(tasks))
        moved = Timeline(CAPACITY, spatial=True).run(shifted,
                                                     start_cycles=start)
        assert moved.makespan_cycles == base.makespan_cycles or abs(
            moved.makespan_cycles - base.makespan_cycles) < 1e-6
