"""Differential tests: the codegen JIT vs the reference interpreter.

Both engines must agree on memory effects, instruction counts and —
crucially for the paper's overhead numbers — cycle accounting. Random
kernels come from the same builder-based strategy as the round-trip
property tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.gpu.executor import KernelExecutor, compile_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.libs.kernels import blas, dnn, rand as rand_kernels
from repro.ptx.builder import build_module

from tests.conftest import saxpy_kernel
from tests.ptx.test_roundtrip import random_straightline_kernel

SPEC = QUADRO_RTX_A4000
BASE = 0x7F_A000_0000_00


def run_both(kernel, grid, block, params, setup=None,
             region=1 << 20):
    outcomes = []
    for use_codegen in (False, True):
        memory = GlobalMemory(1 << 22)
        if setup:
            setup(memory)
        executor = KernelExecutor(SPEC, memory, use_codegen=use_codegen)
        compiled = compile_kernel(kernel, SPEC)
        result = executor.launch(compiled, grid, block, params)
        outcomes.append((memory.read(BASE, region), result))
    return outcomes


def assert_equivalent(outcomes):
    (mem_a, res_a), (mem_b, res_b) = outcomes
    if mem_a != mem_b:
        # The engines' only tolerated divergence: f32 chains round
        # per-op in the interpreter but once in the JIT, so stored
        # floats may differ in the last ulps. Integer bytes still
        # compare exactly through the f32 view (equal bits).
        a = np.frombuffer(mem_a, dtype=np.float32)
        b = np.frombuffer(mem_b, dtype=np.float32)
        both_nan = np.isnan(a) & np.isnan(b)
        assert np.all(
            np.isclose(a, b, rtol=1e-3, atol=1e-30) | both_nan
        ), "memory effects diverge beyond f32 rounding"
    assert res_a.instructions == res_b.instructions
    assert res_a.loads == res_b.loads
    assert res_a.stores == res_b.stores
    assert res_a.total_warp_cycles == pytest.approx(
        res_b.total_warp_cycles
    )
    assert res_a.level_counts == res_b.level_counts


class TestKnownKernels:
    def test_saxpy(self):
        def setup(memory):
            memory.write_array(BASE + 65536,
                               np.arange(100, dtype=np.float32))

        outcomes = run_both(
            saxpy_kernel(), (2, 1, 1), (64, 1, 1),
            [BASE, BASE + 65536, 2.0, 100], setup,
        )
        assert_equivalent(outcomes)

    @pytest.mark.parametrize("kernel_name,grid,block,params", [
        ("cublas_sgemm", (1, 1, 1), (64, 1, 1),
         [BASE, BASE + 65536, BASE + 131072, 5, 6, 7, 7, 1, 6, 1,
          1.0, 0.0]),
        ("cublas_sdot_partial", (2, 1, 1), (64, 1, 1),
         [BASE, BASE + 65536, BASE + 131072, 100]),
        ("cublas_isamax_partial", (2, 1, 1), (64, 1, 1),
         [BASE, BASE + 4096, BASE + 65536, 90]),
        ("cudnn_relu_fwd", (1, 1, 1), (128, 1, 1),
         [BASE, BASE + 65536, 100]),
        ("cudnn_softmax_xent", (1, 1, 1), (32, 1, 1),
         [BASE, BASE + 4096, BASE + 8192, BASE + 65536,
          BASE + 131072, 8, 5, 0.125]),
        ("curand_normal", (1, 1, 1), (64, 1, 1),
         [BASE, 1234, 0.0, 1.0, 64]),
    ])
    def test_library_kernels(self, kernel_name, grid, block, params):
        module = build_module(
            blas.all_kernels() + dnn.all_kernels()
            + rand_kernels.all_kernels()
        )

        def setup(memory):
            rng = np.random.RandomState(7)
            memory.write_array(
                BASE + 65536, rng.randn(4096).astype(np.float32))
            memory.write_array(
                BASE + 131072,
                rng.randint(0, 5, 4096).astype(np.uint32), dtype="u32")

        outcomes = run_both(module.kernels[kernel_name], grid, block,
                            params, setup)
        assert_equivalent(outcomes)


class TestRandomKernels:
    @given(random_straightline_kernel())
    @settings(max_examples=25, deadline=None)
    def test_random_kernels_agree(self, module):
        kernel = module.kernels["rk"]
        outcomes = run_both(kernel, (1, 1, 1), (32, 1, 1),
                            [BASE, 32, 1.5], region=4096)
        (mem_a, res_a), (mem_b, res_b) = outcomes
        # f32 stores may differ in the last ulp (the JIT evaluates f32
        # chains in double precision; the interpreter rounds each op).
        a = np.frombuffer(mem_a, dtype=np.float32)
        b = np.frombuffer(mem_b, dtype=np.float32)
        both_nan = np.isnan(a) & np.isnan(b)
        close = np.isclose(a, b, rtol=1e-4, atol=1e-30) | both_nan
        finite_mismatch = ~close & np.isfinite(a) & np.isfinite(b)
        assert not finite_mismatch.any()
        assert res_a.instructions == res_b.instructions
        assert res_a.total_warp_cycles == pytest.approx(
            res_b.total_warp_cycles
        )
