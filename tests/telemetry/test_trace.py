"""SpanTracer unit tests: nesting, the ring bound, trace inheritance."""

import pytest

from repro.telemetry.trace import SERVER_TRACK, Span, SpanTracer


class TestClock:
    def test_starts_at_zero_and_only_advance_moves_it(self):
        tracer = SpanTracer()
        assert tracer.clock == 0.0
        span = tracer.begin("noop", "call")
        tracer.end(span)
        assert tracer.clock == 0.0  # spans never charge
        tracer.advance(120.0)
        assert tracer.clock == 120.0

    def test_span_duration_is_charged_cycles(self):
        tracer = SpanTracer()
        span = tracer.begin("work", "call")
        tracer.advance(500.0)
        tracer.end(span)
        assert span.cycles == 500.0
        assert span.start == 0.0 and span.end == 500.0


class TestNesting:
    def test_child_inherits_parent_trace_and_id(self):
        tracer = SpanTracer()
        parent = tracer.begin("call", "call", "alice", trace_id=77)
        child = tracer.begin("bounds", "bounds", "alice")
        assert child.trace_id == 77
        assert child.parent_id == parent.span_id
        tracer.end(child)
        tracer.end(parent)
        assert parent.contains(child)

    def test_root_without_trace_mints_one(self):
        tracer = SpanTracer()
        first = tracer.begin("a", "call")
        tracer.end(first)
        second = tracer.begin("b", "call")
        tracer.end(second)
        assert first.trace_id != second.trace_id

    def test_unwound_children_close_with_ancestor(self):
        """Ending an outer span closes abandoned children at the same
        instant — the exception-unwind path stays well-nested."""
        tracer = SpanTracer()
        outer = tracer.begin("call", "call")
        inner = tracer.begin("patch", "patch")
        tracer.advance(100.0)
        tracer.end(outer)  # inner never explicitly ended
        assert tracer.open_spans == 0
        assert inner.end == outer.end == 100.0
        assert outer.contains(inner)

    def test_sequential_siblings_do_not_overlap(self):
        tracer = SpanTracer()
        parent = tracer.begin("call", "call")
        first = tracer.begin("critical", "critical")
        tracer.advance(40.0)
        tracer.end(first)
        second = tracer.begin("launch", "launch")
        tracer.advance(60.0)
        tracer.end(second)
        tracer.end(parent)
        assert first.end <= second.start
        assert parent.contains(first) and parent.contains(second)
        assert parent.cycles == 100.0


class TestRing:
    def test_ring_bound_drops_oldest(self):
        tracer = SpanTracer(capacity=4)
        for index in range(10):
            span = tracer.begin(f"s{index}", "call")
            tracer.end(span)
        retained = tracer.spans()
        assert len(retained) == 4
        assert [span.name for span in retained] == ["s6", "s7", "s8", "s9"]
        assert tracer.spans_dropped == 6

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)

    def test_reset_clears_ring_and_counters(self):
        tracer = SpanTracer()
        tracer.end(tracer.begin("x", "call"))
        tracer.reset()
        assert tracer.spans() == []
        assert tracer.spans_dropped == 0


class TestEmit:
    def test_emit_records_on_arbitrary_track(self):
        tracer = SpanTracer()
        span = tracer.emit("copy", "device", "alice", track="gpu",
                           start=10.0, end=25.0, kind="h2d")
        assert span.track == "gpu"
        assert span.cycles == 15.0
        assert span.attrs == {"kind": "h2d"}
        assert tracer.spans() == [span]

    def test_emit_keeps_explicit_trace_and_parent(self):
        tracer = SpanTracer()
        parent = tracer.emit("migrate", "migration", "a", track="cluster",
                             start=0.0, end=9.0, trace_id=5)
        child = tracer.emit("snapshot", "migration", "a", track="cluster",
                            start=0.0, end=4.0, trace_id=5,
                            parent_id=parent.span_id)
        assert child.trace_id == parent.trace_id == 5
        assert child.parent_id == parent.span_id

    def test_spans_for_filters_by_tenant(self):
        tracer = SpanTracer()
        tracer.emit("a", "call", "alice", track=SERVER_TRACK,
                    start=0, end=1)
        tracer.emit("b", "call", "bob", track=SERVER_TRACK,
                    start=1, end=2)
        assert [s.name for s in tracer.spans_for("alice")] == ["a"]


class TestContains:
    def test_containment_is_inclusive(self):
        outer = Span(1, 1, None, "o", "call", "t", start=0.0, end=10.0)
        inner = Span(1, 2, 1, "i", "bounds", "t", start=0.0, end=10.0)
        assert outer.contains(inner)
        inner.end = 10.5
        assert not outer.contains(inner)
