"""MetricsRegistry unit tests: families, quantiles, exposition."""

import json
import math

import pytest

from repro.telemetry.registry import MetricsRegistry


class TestFamilies:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        calls = registry.counter("calls_total")
        calls.inc(tenant="a")
        calls.inc(2, tenant="a")
        calls.inc(tenant="b")
        assert calls.value(tenant="a") == 3
        assert calls.value(tenant="b") == 1
        assert calls.value(tenant="c") == 0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_gauge_keeps_last_write(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3, lane="l0")
        gauge.set(7, lane="l0")
        assert gauge.value(lane="l0") == 7
        assert gauge.value(lane="l1") is None

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1


class TestHistogram:
    def test_exact_for_single_value(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        hist.observe(1234.0, tenant="a")
        for q in (0.5, 0.99, 0.999):
            assert hist.quantile(q, tenant="a") == 1234.0

    def test_quantiles_within_bucket_error(self):
        """p50/p99/p999 of a known distribution land within the
        log-linear bucket's ~2.2% relative width."""
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        values = [float(v) for v in range(1, 10_001)]
        for value in values:
            hist.observe(value)
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = values[math.ceil(q * len(values)) - 1]
            approx = hist.quantile(q)
            assert abs(approx - exact) / exact < 0.03

    def test_quantiles_clamped_to_observed_range(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        hist.observe(100.0)
        hist.observe(200.0)
        assert 100.0 <= hist.quantile(0.5) <= 200.0
        assert hist.quantile(0.999) <= 200.0

    def test_empty_series_quantile_is_zero(self):
        registry = MetricsRegistry()
        assert registry.histogram("lat").quantile(0.5, tenant="x") == 0.0

    def test_sub_unit_values_share_zero_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        hist.observe(0.0)
        hist.observe(0.5)
        assert hist.count() == 2
        assert hist.quantile(0.5) == 0.0


class TestSnapshot:
    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c", "help text").inc(tenant="a")
        registry.gauge("g").set(float("inf"), node="n0")
        registry.histogram("h").observe(5.0, tenant="a")
        snapshot = registry.snapshot()
        text = json.dumps(snapshot)  # must not raise
        assert "help text" in text
        by_name = {family["name"]: family for family in snapshot}
        assert by_name["g"]["series"][0]["value"] is None  # inf -> None
        hist_series = by_name["h"]["series"][0]
        assert hist_series["count"] == 1
        assert hist_series["quantiles"]["p50"] == 5.0
        assert hist_series["quantiles"]["p999"] == 5.0

    def test_snapshot_keeps_min_max_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (10.0, 20.0, 30.0):
            hist.observe(value)
        series = registry.snapshot()[0]["series"][0]
        assert series["min"] == 10.0
        assert series["max"] == 30.0
        assert series["sum"] == 60.0


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", "calls").inc(3, tenant="a")
        registry.gauge("depth").set(2.5, lane="l0")
        text = registry.render_prometheus()
        assert "# HELP calls_total calls" in text
        assert "# TYPE calls_total counter" in text
        assert 'calls_total{tenant="a"} 3' in text
        assert 'depth{lane="l0"} 2.5' in text

    def test_histogram_renders_as_summary(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(100.0, tenant="a")
        text = registry.render_prometheus()
        assert "# TYPE lat summary" in text
        assert 'lat{quantile="0.5",tenant="a"} 100' in text
        assert 'lat{quantile="0.999",tenant="a"} 100' in text
        assert 'lat_count{tenant="a"} 1' in text
        assert 'lat_sum{tenant="a"} 100' in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(detail='say "hi"\nbye')
        text = registry.render_prometheus()
        assert r'detail="say \"hi\"\nbye"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
