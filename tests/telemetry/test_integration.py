"""End-to-end telemetry: off-by-default identity, span invariants,
reconciliation, export, and the report CLI."""

import json

import numpy as np
import pytest

from repro import GuardianSystem, ServerConfig
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.telemetry.export import (
    dump_snapshot,
    load_snapshot,
    to_chrome_trace,
    write_chrome_trace,
)


def run_workload(config: ServerConfig, fault_plan=None,
                 tenants=("alice", "bob")) -> GuardianSystem:
    """A small deterministic multi-tenant workload."""
    system = GuardianSystem(config=config, fault_plan=fault_plan)
    data = np.arange(64, dtype=np.float32).tobytes()
    for name in tenants:
        tenant = system.attach(name, 1 << 20)
        buffer = tenant.runtime.cudaMalloc(512)
        tenant.runtime.cudaMemcpyH2D(buffer, data)
        back = tenant.runtime.cudaMemcpyD2H(buffer, 256)
        assert back == data[:256]
    system.synchronize()
    return system


class TestOffByDefault:
    def test_stock_server_has_no_telemetry(self):
        system = run_workload(ServerConfig())
        assert system.server.telemetry is None
        assert system.device.telemetry is None

    def test_telemetry_never_charges_cycles(self):
        """The acceptance bar: identical modelled clocks on and off."""
        off = run_workload(ServerConfig())
        on = run_workload(ServerConfig(telemetry=True))
        assert on.server.stats.cycles == off.server.stats.cycles
        assert on.device.clock_cycles == off.device.clock_cycles
        for name in ("alice", "bob"):
            assert (
                on.tenants[name].client.channel.stats.client_cycles
                == off.tenants[name].client.channel.stats.client_cycles
            )

    def test_telemetry_identity_with_batching_and_faults(self):
        plan = lambda: FaultPlan(  # noqa: E731 — two identical plans
            [FaultSpec(kind=FaultKind.IPC_DROP, tenant="alice",
                       op="malloc", at_call=1, times=2)],
            seed=11,
        )
        config = {"enable_ipc_batching": True}
        off = run_workload(ServerConfig(**config), fault_plan=plan())
        on = run_workload(ServerConfig(telemetry=True, **config),
                          fault_plan=plan())
        assert on.server.stats.cycles == off.server.stats.cycles


class TestSpanInvariants:
    def _spans(self, **config):
        system = run_workload(ServerConfig(telemetry=True, **config))
        return system, system.server.telemetry.tracer.spans()

    def test_server_track_children_are_contained(self):
        _, spans = self._spans()
        by_id = {span.span_id: span for span in spans}
        nested = 0
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.contains(span), (
                f"{span.name} [{span.start}, {span.end}] escapes "
                f"{parent.name} [{parent.start}, {parent.end}]"
            )
            assert span.trace_id == parent.trace_id
            nested += 1
        assert nested > 0

    def test_call_spans_reconcile_with_server_clock(self):
        system, spans = self._spans()
        call_sum = sum(
            span.cycles for span in spans if span.category == "call"
        )
        assert call_sum == pytest.approx(system.server.stats.cycles)

    def test_per_tenant_call_sums_partition_the_clock(self):
        system, spans = self._spans()
        per_tenant = {}
        for span in spans:
            if span.category == "call":
                per_tenant[span.tenant] = (
                    per_tenant.get(span.tenant, 0.0) + span.cycles
                )
        assert set(per_tenant) == {"alice", "bob"}
        assert sum(per_tenant.values()) == pytest.approx(
            system.server.stats.cycles
        )

    def test_expected_categories_present(self):
        _, spans = self._spans()
        categories = {span.category for span in spans}
        assert {"call", "bounds", "device"} <= categories

    def test_queue_spans_cover_batched_waits(self):
        system = run_workload(
            ServerConfig(telemetry=True, enable_ipc_batching=True)
        )
        spans = system.server.telemetry.tracer.spans()
        queue_spans = [s for s in spans if s.category == "queue"]
        assert queue_spans
        for span in queue_spans:
            assert span.track.startswith("client:")
            assert span.end >= span.start


class TestTraceStability:
    def test_retried_call_keeps_one_trace(self):
        """A dropped-then-resent crossing is one logical call: its
        fault span shares the call span's trace id."""
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.IPC_DROP, tenant="alice",
                       op="malloc", at_call=1, times=2)],
            seed=3,
        )
        system = run_workload(ServerConfig(telemetry=True),
                              fault_plan=plan)
        spans = system.server.telemetry.tracer.spans()
        fault_spans = [s for s in spans if s.category == "fault"]
        assert len(fault_spans) == 1
        fault = fault_spans[0]
        assert fault.name == "fault:ipc_drop"
        call = next(
            s for s in spans
            if s.category == "call" and s.span_id == fault.parent_id
        )
        assert call.name == "malloc" and call.tenant == "alice"
        assert fault.trace_id == call.trace_id
        assert call.contains(fault)
        # The recovery is also a metric event.
        telemetry = system.server.telemetry
        assert telemetry.fault_events.value(
            tenant="alice", kind="ipc_drop", action="retried",
            node="<local>",
        ) == 1

    def test_duplicate_suppression_stays_in_call_trace(self):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.IPC_DUPLICATE, tenant="bob",
                       op="malloc", at_call=1)],
            seed=3,
        )
        system = run_workload(ServerConfig(telemetry=True),
                              fault_plan=plan)
        spans = system.server.telemetry.tracer.spans()
        fault = next(s for s in spans if s.category == "fault")
        assert fault.name == "fault:ipc_duplicate"
        call = next(
            s for s in spans if s.span_id == fault.parent_id
        )
        assert call.trace_id == fault.trace_id
        assert call.tenant == "bob"

    def test_client_crash_counts(self):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CLIENT_CRASH, tenant="alice",
                       op="memcpy_h2d", at_call=1)],
            seed=5,
        )
        from repro.errors import ClientCrashed

        system = GuardianSystem(config=ServerConfig(telemetry=True),
                                fault_plan=plan)
        tenant = system.attach("alice", 1 << 20)
        buffer = tenant.runtime.cudaMalloc(256)
        with pytest.raises(ClientCrashed):
            tenant.runtime.cudaMemcpyH2D(buffer, b"x" * 256)
        telemetry = system.server.telemetry
        assert telemetry.client_crashes.value(
            tenant="alice", method="memcpy_h2d") == 1

    def test_ptx_mutation_counts(self):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.PTX_TRUNCATE, tenant="alice",
                       op="load_module_ptx", at_call=1)],
            seed=5,
        )
        system = GuardianSystem(config=ServerConfig(telemetry=True),
                                fault_plan=plan)
        tenant = system.attach("alice", 1 << 20)
        from repro.ptx.emitter import emit_module
        from tests.conftest import saxpy_module

        with pytest.raises(Exception) as failure:
            tenant.client.load_module_ptx(emit_module(saxpy_module()))
        assert not isinstance(failure.value, AssertionError)
        telemetry = system.server.telemetry
        assert telemetry.payload_mutations.value(
            kind="ptx_truncate", payload="ptx_text") == 1


class TestDeviceTrack:
    def test_synchronize_emits_device_spans(self):
        system = run_workload(ServerConfig(telemetry=True))
        spans = system.server.telemetry.tracer.spans()
        device_spans = [s for s in spans if s.category == "device"]
        assert device_spans
        for span in device_spans:
            assert span.track == "gpu"
            assert span.tenant in ("alice", "bob")
            assert span.end >= span.start >= 0.0
            assert span.attrs["kind"] in ("kernel", "h2d", "d2h", "d2d")

    def test_device_spans_line_up_with_device_clock(self):
        system = run_workload(ServerConfig(telemetry=True))
        spans = system.server.telemetry.tracer.spans()
        last_end = max(
            s.end for s in spans if s.category == "device"
        )
        assert last_end <= system.device.clock_cycles + 1e-9


class TestExport:
    def test_chrome_trace_shape(self, tmp_path):
        system = run_workload(ServerConfig(telemetry=True))
        spans = system.server.telemetry.tracer.spans()
        trace = to_chrome_trace(spans)
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == len(spans)
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)
        for event in complete:
            assert event["dur"] >= 0
            assert "trace_id" in event["args"]
        # One process row per track, stable pids.
        tracks = {s.track for s in spans}
        pids = {e["pid"] for e in complete}
        assert len(pids) == len(tracks)
        # Round-trips through JSON.
        path = write_chrome_trace(tmp_path / "trace.json", spans)
        assert json.loads(path.read_text())["traceEvents"]

    def test_snapshot_roundtrip_and_report(self, tmp_path, capsys):
        system = run_workload(ServerConfig(telemetry=True))
        path = dump_snapshot(tmp_path / "snap.json",
                             system.server.telemetry,
                             meta={"run": "test"})
        snapshot = load_snapshot(path)
        assert snapshot["meta"] == {"run": "test"}
        assert snapshot["spans"]
        assert "guardian_call_latency_cycles" in snapshot["prometheus"]

        from repro.__main__ import main

        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Latency distributions" in out
        assert "p999" in out
        assert "tenant=alice" in out

        assert main(["report", str(path), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE guardian_calls_total counter" in out

    def test_report_quantiles_render_per_tenant(self, tmp_path, capsys):
        system = run_workload(ServerConfig(telemetry=True))
        path = dump_snapshot(tmp_path / "snap.json",
                             system.server.telemetry)
        from repro.__main__ import main

        main(["report", str(path)])
        out = capsys.readouterr().out
        # The per-tenant aggregate rows (no method label).
        assert "tenant=alice" in out and "tenant=bob" in out


class TestClusterTelemetry:
    def _cluster(self, plan=None):
        from repro.cluster import ClusterConfig, GuardianCluster

        config = ClusterConfig(
            server_config=ServerConfig(telemetry=True),
        )
        return GuardianCluster(2, config=config, fault_plan=plan)

    def test_migration_spans_and_counter(self):
        cluster = self._cluster()
        session = cluster.attach("tenant", 1 << 20)
        ptr = session.client.malloc(512)
        session.client.memcpy_h2d(ptr, b"m" * 512)
        assert cluster.migrate("tenant", reason="test",
                               trigger="operator")
        telemetry = cluster.telemetry
        assert telemetry is not None
        spans = telemetry.tracer.spans()
        parent = next(s for s in spans if s.name == "migrate:tenant")
        children = [s for s in spans
                    if s.parent_id == parent.span_id]
        assert {c.name for c in children} == {"snapshot", "restore"}
        for child in children:
            assert parent.contains(child)
            assert child.trace_id == parent.trace_id
        assert parent.attrs["outcome"] == "success"
        assert parent.cycles > 0
        outcomes = {
            labels["outcome"]
            for labels, _ in telemetry.migrations.series()
        }
        assert outcomes == {"success"}

    def test_failed_migration_marker(self):
        from repro.cluster import ClusterConfig, GuardianCluster

        # One node: a migration can never find a target.
        cluster = GuardianCluster(1, config=ClusterConfig(
            server_config=ServerConfig(telemetry=True)))
        session = cluster.attach("tenant", 1 << 20)
        session.client.malloc(512)
        assert not cluster.migrate("tenant", reason="no room",
                                   trigger="operator")
        spans = cluster.telemetry.tracer.spans()
        marker = next(s for s in spans if s.name == "migrate:tenant")
        assert marker.attrs["outcome"] == "failed"
        assert marker.cycles == 0.0

    def test_tick_publishes_health_gauges(self):
        cluster = self._cluster()
        cluster.tick()
        registry = cluster.telemetry.registry
        rung = registry.gauge("guardian_node_health_rung")
        score = registry.gauge("guardian_node_failure_domain_score")
        for node in cluster.nodes:
            assert rung.value(node=node.node_id) == 0.0
            assert score.value(node=node.node_id) == 0.0

    def test_down_node_gauge_stays_finite(self):
        from repro.faults.plan import FaultPlan

        plan = FaultPlan.node_chaos(seed=1,
                                    nodes=("node0", "node1"))
        cluster = self._cluster(plan=plan)
        for _ in range(16):
            cluster.tick()
        registry = cluster.telemetry.registry
        score = registry.gauge("guardian_node_failure_domain_score")
        for node in cluster.nodes:
            value = score.value(node=node.node_id)
            assert value is not None
            assert value == value  # not NaN
            assert value != float("inf")

    def test_cluster_telemetry_off_by_default(self):
        from repro.cluster import GuardianCluster

        assert GuardianCluster(2).telemetry is None
