"""fatBIN tests — the paper's Table 1 packaging matrix and cuobjdump."""

import pytest

from repro.errors import DriverError
from repro.driver.fatbin import (
    build_fatbin,
    cuobjdump,
    describe,
)
from repro.ptx import parse_module

from tests.conftest import saxpy_module


class TestTable1Matrix:
    """CUDA version x architecture -> PTX/cuBIN presence (Table 1)."""

    def test_cuda_10_ships_ptx_for_turing(self):
        fatbin = build_fatbin(saxpy_module(), "lib", "10.2")
        assert describe(fatbin) == [("ptx", "turing")]

    def test_cuda_11_7_ships_turing_cubin_ampere_ptx(self):
        fatbin = build_fatbin(saxpy_module(), "lib", "11.7")
        assert describe(fatbin) == [
            ("cubin", "turing"), ("ptx", "ampere"),
        ]

    def test_cuda_12_ships_two_cubins_hopper_ptx(self):
        fatbin = build_fatbin(saxpy_module(), "lib", "12.0")
        assert describe(fatbin) == [
            ("cubin", "turing"), ("cubin", "ampere"), ("ptx", "hopper"),
        ]

    def test_cuda_11_8_is_the_hopper_tier(self):
        fatbin = build_fatbin(saxpy_module(), "lib", "11.8")
        assert ("ptx", "hopper") in describe(fatbin)


class TestExtraction:
    def test_cuobjdump_recovers_ptx(self):
        fatbin = build_fatbin(saxpy_module(), "lib", "11.7")
        texts = cuobjdump(fatbin)
        assert len(texts) == 1
        module = parse_module(texts[0])
        assert "saxpy" in module.kernels

    def test_cubin_is_not_ptx_recoverable(self):
        """The closed-source property: machine code can't be turned
        back into PTX by extraction tools."""
        fatbin = build_fatbin(saxpy_module(), "lib", "11.7")
        cubin = fatbin.cubin_entries()[0]
        with pytest.raises(DriverError, match="cannot be recovered"):
            cubin.ptx_text()

    def test_cubin_payload_is_opaque(self):
        fatbin = build_fatbin(saxpy_module(), "lib", "11.7")
        payload = fatbin.cubin_entries()[0].payload
        assert payload.startswith(b"CUBIN\x00")
        assert b".visible .entry" not in payload

    def test_cubin_for_lookup(self):
        fatbin = build_fatbin(saxpy_module(), "lib", "12.0")
        assert fatbin.cubin_for("turing") is not None
        assert fatbin.cubin_for("ampere") is not None
        assert fatbin.cubin_for("hopper") is None
