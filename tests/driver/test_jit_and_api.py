"""Driver JIT and cu* API tests."""

import numpy as np
import pytest

from repro.errors import DriverError, PTXError
from repro.driver.api import DriverAPI
from repro.driver.fatbin import build_fatbin
from repro.driver.jit import JIT_CYCLES_PER_KERNEL, jit_compile
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.ptx import emit_module

from tests.conftest import saxpy_module


@pytest.fixture
def device():
    return Device(QUADRO_RTX_A4000)


@pytest.fixture
def driver(device):
    return DriverAPI(device)


class TestJIT:
    def test_compile_from_text(self):
        compiled = jit_compile(emit_module(saxpy_module()),
                               QUADRO_RTX_A4000)
        assert "saxpy" in compiled.kernels

    def test_compile_from_module(self):
        compiled = jit_compile(saxpy_module(), QUADRO_RTX_A4000)
        assert compiled.kernels["saxpy"].allocation.virtual_regs > 0

    def test_jit_cost_per_kernel(self):
        compiled = jit_compile(saxpy_module(), QUADRO_RTX_A4000)
        assert compiled.jit_cycles == JIT_CYCLES_PER_KERNEL

    def test_invalid_ptx_rejected(self):
        bad = (".version 7.5\n.target sm_86\n.address_size 64\n"
               ".visible .entry k()\n{\nmov.u32 %r1, 1;\nret;\n}")
        with pytest.raises(PTXError):
            jit_compile(bad, QUADRO_RTX_A4000)

    def test_empty_module_rejected(self):
        with pytest.raises(PTXError):
            jit_compile(".version 7.5\n.target sm_86\n"
                        ".address_size 64\n", QUADRO_RTX_A4000)


class TestModuleLoading:
    def test_load_and_launch(self, device, driver):
        context = driver.cuCtxCreate("app")
        module = driver.cuModuleLoadData(
            context, emit_module(saxpy_module()))
        function = driver.cuModuleGetFunction(module, "saxpy")
        addr = driver.cuMemAlloc(context, 4096)
        xs = np.ones(64, dtype=np.float32)
        driver.cuMemcpyHtoD(context.default_stream, addr + 2048,
                            xs.tobytes())
        driver.cuLaunchKernel(function, (1, 1, 1), (64, 1, 1),
                              [addr, addr + 2048, 5.0, 64],
                              context.default_stream)
        out = np.frombuffer(
            driver.cuMemcpyDtoH(context.default_stream, addr, 256),
            dtype=np.float32,
        )
        assert np.allclose(out, 5.0)

    def test_unknown_function_rejected(self, driver):
        context = driver.cuCtxCreate("app")
        module = driver.cuModuleLoadData(
            context, emit_module(saxpy_module()))
        with pytest.raises(DriverError, match="not found"):
            driver.cuModuleGetFunction(module, "nonexistent")

    def test_function_handles_cached(self, driver):
        context = driver.cuCtxCreate("app")
        module = driver.cuModuleLoadData(
            context, emit_module(saxpy_module()))
        a = driver.cuModuleGetFunction(module, "saxpy")
        b = driver.cuModuleGetFunction(module, "saxpy")
        assert a is b


class TestFatbinSelection:
    def test_matching_cubin_preferred(self, device):
        driver = DriverAPI(device, force_ptx_jit=False)
        context = driver.cuCtxCreate("app")
        # CUDA 12 fatbins carry an *ampere* cuBIN — our device arch.
        fatbin = build_fatbin(saxpy_module(), "lib", "12.0")
        driver.cuModuleLoadFatBinary(context, fatbin)
        assert driver.stats.modules_from_cubin == 1

    def test_force_ptx_jit_ignores_cubin(self, device):
        """CUDA_FORCE_PTX_JIT: Guardian's guarantee that patched PTX
        wins over embedded machine code (paper §2.2)."""
        driver = DriverAPI(device, force_ptx_jit=True)
        context = driver.cuCtxCreate("app")
        fatbin = build_fatbin(saxpy_module(), "lib", "12.0")
        driver.cuModuleLoadFatBinary(context, fatbin)
        assert driver.stats.modules_from_cubin == 0

    def test_ptx_fallback_when_no_matching_cubin(self, device):
        driver = DriverAPI(device)
        context = driver.cuCtxCreate("app")
        # CUDA 11.7: cuBIN only for turing; ampere device JITs the PTX.
        fatbin = build_fatbin(saxpy_module(), "lib", "11.7")
        driver.cuModuleLoadFatBinary(context, fatbin)
        assert driver.stats.modules_from_cubin == 0
        assert driver.stats.modules_loaded == 1


class TestGlobals:
    def test_module_globals_allocated(self, device, driver):
        ptx = (
            ".version 7.5\n.target sm_86\n.address_size 64\n"
            ".global .align 4 .f32 table[64];\n"
            ".visible .entry k()\n{\n.reg .b64 %rd<2>;\n"
            "mov.u64 %rd1, table;\nret;\n}"
        )
        context = driver.cuCtxCreate("app")
        before = device.allocator.bytes_in_use
        module = driver.cuModuleLoadData(context, ptx)
        assert device.allocator.bytes_in_use == before + 256
        assert "table" in module.global_addresses

    def test_custom_global_placement(self, device, driver):
        ptx = (
            ".version 7.5\n.target sm_86\n.address_size 64\n"
            ".global .align 4 .f32 table[4];\n"
            ".visible .entry k()\n{\n.reg .b64 %rd<2>;\n"
            "mov.u64 %rd1, table;\nret;\n}"
        )
        context = driver.cuCtxCreate("app")
        placed = {}

        def place(name, size):
            placed[name] = size
            return device.memory.base + 0x9000

        module = driver.cuModuleLoadData(context, ptx,
                                         allocate_global=place)
        assert placed == {"table": 16}
        assert module.global_addresses["table"] == (
            device.memory.base + 0x9000
        )
