"""Profiler and reporting tests."""

import numpy as np
import pytest

from repro.analysis.metrics import Profiler
from repro.analysis.reporting import (
    FEATURE_MATRIX,
    overhead_vs,
    percent,
    render_feature_matrix,
    render_spec_table,
    render_table,
)
from repro.driver.fatbin import build_fatbin

from tests.conftest import saxpy_module, upload_array


class TestProfiler:
    def test_collects_per_kernel(self, native_stack):
        device, _, runtime = native_stack
        profiler = Profiler(device)
        handles = runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        xs = np.ones(64, dtype=np.float32)
        x_buf = upload_array(runtime, xs)
        y_buf = runtime.cudaMalloc(256)
        for _ in range(3):
            runtime.cudaLaunchKernel(handles["saxpy"],
                                     (1, 1, 1), (64, 1, 1),
                                     [y_buf, x_buf, 1.0, 64])
        profiles = profiler.collect()
        assert profiles["saxpy"].launches == 3
        assert profiles["saxpy"].loads > 0
        assert 0.0 <= profiles["saxpy"].l1_hit_ratio <= 1.0

    def test_incremental_collection(self, native_stack):
        device, _, runtime = native_stack
        profiler = Profiler(device)
        handles = runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        buf = runtime.cudaMalloc(256)
        runtime.cudaLaunchKernel(handles["saxpy"], (1, 1, 1), (32, 1, 1),
                                 [buf, buf, 1.0, 32])
        first = profiler.collect()
        assert first["saxpy"].launches == 1
        second = profiler.collect()
        assert second == {}

    def test_overall_aggregation(self, native_stack):
        device, _, runtime = native_stack
        profiler = Profiler(device)
        handles = runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        buf = runtime.cudaMalloc(256)
        runtime.cudaLaunchKernel(handles["saxpy"], (1, 1, 1), (32, 1, 1),
                                 [buf, buf, 1.0, 32])
        profiles = profiler.collect()
        overall = Profiler.overall(profiles)
        assert overall.launches == 1
        assert overall.total_instructions == (
            profiles["saxpy"].total_instructions)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"],
                            [["alpha", 1], ["b", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in lines[3]  # title, header, rule, rows
        assert len(lines) == 5

    def test_spec_table_contains_both_gpus(self):
        text = render_spec_table()
        assert "Quadro RTX A4000" in text
        assert "GeForce RTX 3080 Ti" in text
        assert "28" in text  # L1 latency

    def test_feature_matrix_guardian_dominates(self):
        """Table 6's point: Guardian is the only row with every
        property."""
        full_rows = [name for name, features in FEATURE_MATRIX.items()
                     if all(features.values())]
        assert full_rows == ["Guardian"]

    def test_feature_matrix_renders(self):
        text = render_feature_matrix()
        assert "G-NET" in text
        assert "MASK" in text

    def test_percent_and_overhead(self):
        assert percent(0.0484) == "4.8%"
        assert overhead_vs(100.0, 109.0) == pytest.approx(0.09)
        assert overhead_vs(0.0, 5.0) == 0.0


class TestClusterFaultMetrics:
    def _cluster_after_gauntlet(self, seed=1):
        from repro.cluster import (
            ClusterConfig, GuardianCluster, PlacementPolicy,
        )
        from repro.faults.plan import FaultPlan

        plan = FaultPlan.node_chaos(
            seed=seed, nodes=("node0", "node1", "node2"),
            tenants=("a", "b", "c"),
        )
        cluster = GuardianCluster(
            3, config=ClusterConfig(
                placement=PlacementPolicy(pack=False)),
            fault_plan=plan,
        )
        for name in ("a", "b", "c"):
            session = cluster.attach(name, 1 << 20)
            ptr = session.client.malloc(256)
            session.client.memcpy_h2d(ptr, name.encode() * 256)
        for _ in range(24):
            cluster.tick()
        return cluster

    def test_records_group_by_node(self):
        from repro.analysis.metrics import collect_cluster_faults

        cluster = self._cluster_after_gauntlet()
        metrics = collect_cluster_faults(cluster)
        assert set(metrics.by_node) == {"node0", "node1", "node2"}
        for node_id, bucket in metrics.by_node.items():
            assert bucket["failure_domain_score"] is not None
            assert bucket["health"] is not None
            assert bucket["records"] == sum(
                bucket["by_action"].values())
        # Seed 1 evicts a tenant off the downed node.
        assert metrics.evictions == 1

    def test_single_supervisor_records_land_in_local_bucket(self):
        from repro.analysis.metrics import collect_faults
        from repro.core.server import GuardianServer
        from repro.core.supervisor import TenantSupervisor
        from repro.core.policy import FencingMode
        from repro.gpu.device import Device
        from repro.gpu.specs import QUADRO_RTX_A4000

        server = GuardianServer(Device(QUADRO_RTX_A4000),
                                FencingMode.BITWISE)
        supervisor = TenantSupervisor(server)
        server.attach("a", 1 << 20)
        supervisor.quarantine_tenant("a", "test")
        metrics = collect_faults(supervisor)
        assert set(metrics.by_node) == {"<local>"}
        assert metrics.by_node["<local>"]["failure_domain_score"] is None

    def test_report_renders_failure_domains(self):
        from repro.analysis.metrics import collect_cluster_faults
        from repro.analysis.reporting import render_failure_report

        cluster = self._cluster_after_gauntlet()
        report = render_failure_report(
            collect_cluster_faults(cluster), title="Cluster failures")
        assert "Failure domains" in report
        assert "fd score" in report
        assert "node2" in report
        assert "down" in report   # the victim node's health state
        assert "inf" in report    # its failure-domain score
        assert "migrations:" in report

    def test_report_without_nodes_has_no_domain_table(self):
        from repro.analysis.metrics import FaultMetrics
        from repro.analysis.reporting import render_failure_report

        report = render_failure_report(FaultMetrics())
        assert "Failure domains" not in report
        assert "migrations:" not in report
