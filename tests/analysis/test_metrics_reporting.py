"""Profiler and reporting tests."""

import numpy as np
import pytest

from repro.analysis.metrics import Profiler
from repro.analysis.reporting import (
    FEATURE_MATRIX,
    overhead_vs,
    percent,
    render_feature_matrix,
    render_spec_table,
    render_table,
)
from repro.driver.fatbin import build_fatbin

from tests.conftest import saxpy_module, upload_array


class TestProfiler:
    def test_collects_per_kernel(self, native_stack):
        device, _, runtime = native_stack
        profiler = Profiler(device)
        handles = runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        xs = np.ones(64, dtype=np.float32)
        x_buf = upload_array(runtime, xs)
        y_buf = runtime.cudaMalloc(256)
        for _ in range(3):
            runtime.cudaLaunchKernel(handles["saxpy"],
                                     (1, 1, 1), (64, 1, 1),
                                     [y_buf, x_buf, 1.0, 64])
        profiles = profiler.collect()
        assert profiles["saxpy"].launches == 3
        assert profiles["saxpy"].loads > 0
        assert 0.0 <= profiles["saxpy"].l1_hit_ratio <= 1.0

    def test_incremental_collection(self, native_stack):
        device, _, runtime = native_stack
        profiler = Profiler(device)
        handles = runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        buf = runtime.cudaMalloc(256)
        runtime.cudaLaunchKernel(handles["saxpy"], (1, 1, 1), (32, 1, 1),
                                 [buf, buf, 1.0, 32])
        first = profiler.collect()
        assert first["saxpy"].launches == 1
        second = profiler.collect()
        assert second == {}

    def test_overall_aggregation(self, native_stack):
        device, _, runtime = native_stack
        profiler = Profiler(device)
        handles = runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        buf = runtime.cudaMalloc(256)
        runtime.cudaLaunchKernel(handles["saxpy"], (1, 1, 1), (32, 1, 1),
                                 [buf, buf, 1.0, 32])
        profiles = profiler.collect()
        overall = Profiler.overall(profiles)
        assert overall.launches == 1
        assert overall.total_instructions == (
            profiles["saxpy"].total_instructions)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"],
                            [["alpha", 1], ["b", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in lines[3]  # title, header, rule, rows
        assert len(lines) == 5

    def test_spec_table_contains_both_gpus(self):
        text = render_spec_table()
        assert "Quadro RTX A4000" in text
        assert "GeForce RTX 3080 Ti" in text
        assert "28" in text  # L1 latency

    def test_feature_matrix_guardian_dominates(self):
        """Table 6's point: Guardian is the only row with every
        property."""
        full_rows = [name for name, features in FEATURE_MATRIX.items()
                     if all(features.values())]
        assert full_rows == ["Guardian"]

    def test_feature_matrix_renders(self):
        text = render_feature_matrix()
        assert "G-NET" in text
        assert "MASK" in text

    def test_percent_and_overhead(self):
        assert percent(0.0484) == "4.8%"
        assert overhead_vs(100.0, 109.0) == pytest.approx(0.09)
        assert overhead_vs(0.0, 5.0) == 0.0


class TestClusterFaultMetrics:
    def _cluster_after_gauntlet(self, seed=1):
        from repro.cluster import (
            ClusterConfig, GuardianCluster, PlacementPolicy,
        )
        from repro.faults.plan import FaultPlan

        plan = FaultPlan.node_chaos(
            seed=seed, nodes=("node0", "node1", "node2"),
            tenants=("a", "b", "c"),
        )
        cluster = GuardianCluster(
            3, config=ClusterConfig(
                placement=PlacementPolicy(pack=False)),
            fault_plan=plan,
        )
        for name in ("a", "b", "c"):
            session = cluster.attach(name, 1 << 20)
            ptr = session.client.malloc(256)
            session.client.memcpy_h2d(ptr, name.encode() * 256)
        for _ in range(24):
            cluster.tick()
        return cluster

    def test_records_group_by_node(self):
        from repro.analysis.metrics import collect_cluster_faults

        cluster = self._cluster_after_gauntlet()
        metrics = collect_cluster_faults(cluster)
        assert set(metrics.by_node) == {"node0", "node1", "node2"}
        for node_id, bucket in metrics.by_node.items():
            assert bucket["failure_domain_score"] is not None
            assert bucket["health"] is not None
            assert bucket["records"] == sum(
                bucket["by_action"].values())
        # Seed 1 evicts a tenant off the downed node.
        assert metrics.evictions == 1

    def test_single_supervisor_records_land_in_local_bucket(self):
        from repro.analysis.metrics import collect_faults
        from repro.core.server import GuardianServer
        from repro.core.supervisor import TenantSupervisor
        from repro.core.policy import FencingMode
        from repro.gpu.device import Device
        from repro.gpu.specs import QUADRO_RTX_A4000

        server = GuardianServer(Device(QUADRO_RTX_A4000),
                                FencingMode.BITWISE)
        supervisor = TenantSupervisor(server)
        server.attach("a", 1 << 20)
        supervisor.quarantine_tenant("a", "test")
        metrics = collect_faults(supervisor)
        assert set(metrics.by_node) == {"<local>"}
        assert metrics.by_node["<local>"]["failure_domain_score"] is None

    def test_report_renders_failure_domains(self):
        from repro.analysis.metrics import collect_cluster_faults
        from repro.analysis.reporting import render_failure_report

        cluster = self._cluster_after_gauntlet()
        report = render_failure_report(
            collect_cluster_faults(cluster), title="Cluster failures")
        assert "Failure domains" in report
        assert "fd score" in report
        assert "node2" in report
        assert "down" in report   # the victim node's health state
        assert "inf" in report    # its failure-domain score
        assert "migrations:" in report

    def test_report_without_nodes_has_no_domain_table(self):
        from repro.analysis.metrics import FaultMetrics
        from repro.analysis.reporting import render_failure_report

        report = render_failure_report(FaultMetrics())
        assert "Failure domains" not in report
        assert "migrations:" not in report

    def test_report_groups_merged_supervisors_per_node(self):
        """Two node-stamped supervisors merged with ``into=`` keep
        their records in separate per-node buckets, and the rendered
        report carries one row per node."""
        from repro.analysis.metrics import collect_faults
        from repro.analysis.reporting import render_failure_report
        from repro.core.policy import FencingMode
        from repro.core.server import GuardianServer
        from repro.core.supervisor import TenantSupervisor
        from repro.gpu.device import Device
        from repro.gpu.specs import QUADRO_RTX_A4000

        def supervisor_on(node):
            server = GuardianServer(Device(QUADRO_RTX_A4000),
                                    FencingMode.BITWISE)
            return TenantSupervisor(server, node=node)

        left, right = supervisor_on("nodeA"), supervisor_on("nodeB")
        left.server.attach("a", 1 << 20)
        left.quarantine_tenant("a", "test eviction")
        right.server.attach("b", 1 << 20)
        right.quarantine_tenant("b", "test eviction")
        right.server.attach("c", 1 << 20)
        right.quarantine_tenant("c", "test eviction")

        metrics = collect_faults(left)
        metrics = collect_faults(right, into=metrics)
        assert set(metrics.by_node) == {"nodeA", "nodeB"}
        assert metrics.by_node["nodeA"]["records"] == 1
        assert metrics.by_node["nodeB"]["records"] == 2
        assert metrics.by_node["nodeB"]["by_action"]["quarantined"] == 2

        report = render_failure_report(metrics)
        lines = report.splitlines()
        node_lines = [line for line in lines
                      if line.startswith(("nodeA", "nodeB"))]
        assert len(node_lines) == 2
        assert "quarantined=2" in report


class TestDenominatorGuards:
    """Satellite: degenerate (pre-dispatch) snapshots never divide by
    zero — they report well-defined sentinel figures instead."""

    def test_overlap_efficiency_empty_snapshot_is_zero(self):
        from repro.analysis.metrics import LaneMetrics

        assert LaneMetrics().overlap_efficiency == 0.0

    def test_overlap_efficiency_serial_with_work_is_one(self):
        from repro.analysis.metrics import LaneMetrics

        serial = LaneMetrics(total_work=1000.0, makespan=1000.0,
                             lane_count=0)
        assert serial.overlap_efficiency == 1.0

    def test_overlap_efficiency_before_any_dispatch(self, guardian_system):
        from repro.analysis.metrics import collect_lanes

        _, server = guardian_system
        metrics = collect_lanes(server)
        assert metrics.overlap_efficiency == 0.0  # no lanes, no work

    def test_retry_success_rate_empty_is_zero(self):
        from repro.analysis.metrics import FaultMetrics

        assert FaultMetrics().retry_success_rate == 0.0

    def test_retry_success_rate_before_any_dispatch(self):
        from repro.analysis.metrics import collect_faults
        from repro.core.policy import FencingMode
        from repro.core.server import GuardianServer
        from repro.core.supervisor import TenantSupervisor
        from repro.gpu.device import Device
        from repro.gpu.specs import QUADRO_RTX_A4000

        supervisor = TenantSupervisor(
            GuardianServer(Device(QUADRO_RTX_A4000), FencingMode.BITWISE)
        )
        assert collect_faults(supervisor).retry_success_rate == 0.0

    def test_hotpath_rates_on_zero_call_snapshot(self):
        """Every HotPathMetrics rate is a well-defined 0.0 before the
        first call — including the trace-replay rate, whose eligible-op
        denominator is zero until a traced handler runs."""
        from repro.analysis.metrics import HotPathMetrics

        empty = HotPathMetrics()
        assert empty.patch_hit_rate == 0.0
        assert empty.extract_hit_rate == 0.0
        assert empty.fastpath_hit_rate == 0.0
        assert empty.trace_replay_rate == 0.0
        assert empty.mean_batch_size == 0.0
        assert empty.total_cycles == 0.0

    def test_trace_replay_rate_before_any_dispatch(self):
        from repro.analysis.metrics import collect_hotpath
        from repro.core.policy import FencingMode
        from repro.core.server import GuardianServer, ServerConfig
        from repro.gpu.device import Device
        from repro.gpu.specs import QUADRO_RTX_A4000

        server = GuardianServer(Device(QUADRO_RTX_A4000),
                                FencingMode.BITWISE,
                                config=ServerConfig.traced())
        assert collect_hotpath(server).trace_replay_rate == 0.0

    def test_hotpath_report_renders_zero_call_snapshot(self):
        """The report renders a degenerate snapshot without dividing by
        zero, and the trace / disk-cache rows only appear once those
        subsystems saw traffic — a trace-off report stays byte-stable."""
        from repro.analysis.metrics import HotPathMetrics
        from repro.analysis.reporting import render_hotpath_report

        report = render_hotpath_report(HotPathMetrics())
        assert "trace replay" not in report
        assert "traces:" not in report
        assert "patch disk cache" not in report
        assert "0.0%" in report  # rates render as guarded zeros

        busy = HotPathMetrics(trace_eligible_ops=10, trace_replay_ops=5,
                              traces_compiled=1, trace_replays=2,
                              patch_disk_hits=1, patch_disk_writes=1)
        report = render_hotpath_report(busy)
        assert "trace replay" in report
        assert "traces: 1 compiled" in report
        assert "patch disk cache: 1 hits, 1 writes" in report


class TestCollectAll:
    def _system(self, telemetry=False):
        from repro import GuardianSystem, ServerConfig

        system = GuardianSystem(
            config=ServerConfig(telemetry=telemetry), supervised=True,
        )
        tenant = system.attach("a", 1 << 20)
        ptr = tenant.runtime.cudaMalloc(256)
        tenant.runtime.cudaMemcpyH2D(ptr, b"x" * 256)
        return system, tenant

    def test_composite_snapshot_matches_parts(self):
        from repro.analysis.metrics import (
            collect_all,
            collect_faults,
            collect_hotpath,
            collect_lanes,
        )

        system, tenant = self._system()
        snapshot = collect_all(system.server, clients=(tenant.client,),
                               supervisor=system.supervisor)
        direct = collect_hotpath(system.server, clients=(tenant.client,))
        assert snapshot.hotpath.server_cycles == direct.server_cycles
        assert snapshot.hotpath.client_cycles == direct.client_cycles
        assert snapshot.lanes.total_work == (
            collect_lanes(system.server).total_work)
        assert snapshot.faults.records == (
            collect_faults(system.supervisor).records)
        assert snapshot.cluster is None

    def test_optional_views_default_to_none(self):
        from repro.analysis.metrics import collect_all

        system, _ = self._system()
        snapshot = collect_all(system.server)
        assert snapshot.faults is None and snapshot.cluster is None
        assert snapshot.hotpath.client_cycles == 0.0  # no clients given

    def test_collect_all_publishes_into_telemetry_registry(self):
        from repro import GuardianSystem, ServerConfig
        from repro.analysis.metrics import collect_all

        # Concurrent dispatch so per-lane gauges have rows to publish.
        system = GuardianSystem(
            config=ServerConfig.concurrent(telemetry=True))
        tenant = system.attach("a", 1 << 20)
        ptr = tenant.runtime.cudaMalloc(256)
        tenant.runtime.cudaMemcpyH2D(ptr, b"x" * 256)
        tenant.client.flush()
        snapshot = collect_all(system.server, clients=(tenant.client,))
        registry = system.server.telemetry.registry
        assert registry.gauge("guardian_server_cycles").value() == (
            snapshot.hotpath.server_cycles)
        assert registry.gauge("guardian_lane_busy_cycles").value(
            tenant="a") is not None
        exposition = registry.render_prometheus()
        assert "guardian_makespan_cycles" in exposition

    def test_collect_all_cluster_view(self):
        from repro.analysis.metrics import collect_all
        from repro.cluster import GuardianCluster

        cluster = GuardianCluster(2)
        cluster.attach("a", 1 << 20)
        cluster.tick()
        node = cluster.nodes[0]
        snapshot = collect_all(node.server, supervisor=node.supervisor,
                               cluster=cluster)
        assert snapshot.cluster is not None
        assert set(snapshot.cluster.by_node) >= {"node0", "node1"}
