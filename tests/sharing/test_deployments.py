"""Deployment harness tests (the Fig. 7 machinery)."""

import pytest

from repro.core.policy import FencingMode
from repro.sharing import AppSpec, build_mix, run_deployment
from repro.sharing.workload_mixes import MIXES, AppDef, EPOCH_SCALE


def tiny_workload(value=7):
    def workload(runtime):
        address = runtime.cudaMalloc(256)
        runtime.cudaMemcpyH2D(address, bytes([value]) * 256)
        assert runtime.cudaMemcpyD2H(address, 256) == bytes([value]) * 256
        runtime.cudaDeviceSynchronize()

    return workload


class TestHarness:
    @pytest.mark.parametrize("deployment", [
        "native", "mps", "guardian-noprot", "guardian",
    ])
    def test_every_deployment_runs(self, deployment):
        apps = [AppSpec(f"app{i}", tiny_workload(i + 1),
                        partition_bytes=1 << 20) for i in range(2)]
        run = run_deployment(deployment, apps)
        assert run.deployment == deployment
        assert len(run.apps) == 2
        assert run.makespan_seconds > 0

    def test_unknown_deployment_rejected(self):
        with pytest.raises(ValueError):
            run_deployment("vmware", [])

    def test_native_time_shares(self):
        apps = [AppSpec(f"app{i}", tiny_workload(), 1 << 20)
                for i in range(3)]
        run = run_deployment("native", apps)
        assert run.context_switches >= 1

    def test_spatial_no_switches(self):
        apps = [AppSpec(f"app{i}", tiny_workload(), 1 << 20)
                for i in range(3)]
        run = run_deployment("guardian", apps)
        assert run.context_switches == 0

    def test_per_app_results_tagged(self):
        apps = [AppSpec("alpha", tiny_workload(), 1 << 20),
                AppSpec("beta", tiny_workload(), 1 << 20)]
        run = run_deployment("mps", apps)
        assert {a.app_id for a in run.apps} == {"alpha", "beta"}
        for app in run.apps:
            assert app.wall_seconds >= app.device_seconds
            assert app.wall_seconds >= app.host_seconds


class TestMixes:
    def test_table4_inventory(self):
        assert set(MIXES) == set("ABCDEFGHIJKLMNOP")

    def test_client_counts_match_table4(self):
        assert len(MIXES["A"]) == 2
        assert len(MIXES["B"]) == 4
        assert len(MIXES["K"]) == 5
        assert len(MIXES["L"]) == 6
        assert len(MIXES["P"]) == 4

    def test_same_vs_different_apps(self):
        # A-H are homogeneous; I-P are mixed.
        for mix_id in "ABCDEFGH":
            names = {d.name for d in MIXES[mix_id]}
            assert len(names) == 1, mix_id
        for mix_id in "IJKLMNOP":
            names = {d.name for d in MIXES[mix_id]}
            assert len(names) > 1, mix_id

    def test_epoch_scaling(self):
        lenet = AppDef(kind="ml", name="lenet", paper_epochs=500)
        assert lenet.epochs == 500 // EPOCH_SCALE
        tiny = AppDef(kind="ml", name="siamese", paper_epochs=30)
        assert tiny.epochs == 1  # floor of 1

    def test_build_mix_unique_app_ids(self):
        specs = build_mix("K")
        ids = [spec.app_id for spec in specs]
        assert len(ids) == len(set(ids))

    def test_build_mix_unknown_id(self):
        with pytest.raises(KeyError):
            build_mix("Z")


class TestShapeProperties:
    """Coarse Fig. 7 shape assertions on one small mix (the full sweep
    lives in benchmarks/)."""

    @pytest.fixture(scope="class")
    def runs(self):
        results = {}
        for deployment in ("native", "mps", "guardian-noprot",
                           "guardian"):
            results[deployment] = run_deployment(
                deployment, build_mix("A", samples=16, batch=16),
                max_blocks=4,
            )
        return results

    def test_spatial_beats_timesharing(self, runs):
        for deployment in ("mps", "guardian-noprot", "guardian"):
            assert (runs[deployment].makespan_seconds
                    < runs["native"].makespan_seconds)

    def test_guardian_close_to_mps(self, runs):
        """Protected spatial sharing costs only a few percent over
        unprotected MPS (paper: 4.84%)."""
        ratio = (runs["guardian"].makespan_seconds
                 / runs["mps"].makespan_seconds)
        assert 0.95 < ratio < 1.15

    def test_noprot_at_most_mps(self, runs):
        ratio = (runs["guardian-noprot"].makespan_seconds
                 / runs["mps"].makespan_seconds)
        assert ratio < 1.05

    def test_no_transfers_rejected_for_legal_apps(self, runs):
        assert runs["guardian"].transfers_rejected == 0
