"""Standalone-overhead runs (the Fig. 8/9 machinery)."""

import pytest

from repro.sharing.standalone import (
    STANDALONE_CONFIGS,
    run_standalone,
    run_standalone_suite,
)
from repro.sharing.workload_mixes import _ml_workload


class TestConfigs:
    def test_config_inventory(self):
        assert STANDALONE_CONFIGS == (
            "native", "noprot", "bitwise", "modulo", "checking",
        )

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            run_standalone(lambda runtime: None, "mystery")


class TestOverheadShape:
    """The paper's §6.2 ordering, asserted on a small lenet run."""

    @pytest.fixture(scope="class")
    def results(self):
        return run_standalone_suite(
            lambda: _ml_workload("lenet", epochs=1, seed=0,
                                 samples=16, batch=16),
            max_blocks=4,
        )

    def test_all_configs_ran(self, results):
        assert set(results) == set(STANDALONE_CONFIGS)

    def test_interception_overhead_small(self, results):
        """noprot within ~15% of native (paper: 3.7-10%)."""
        overhead = results["noprot"] / results["native"] - 1
        assert -0.02 <= overhead < 0.15

    def test_bitwise_cheapest_protection(self, results):
        assert results["bitwise"] <= results["modulo"]
        assert results["bitwise"] <= results["checking"]

    def test_bitwise_overhead_in_paper_band(self, results):
        """Fencing totals 4%-15% over native (paper: 5.9%-12%)."""
        overhead = results["bitwise"] / results["native"] - 1
        assert 0.0 < overhead < 0.20

    def test_modulo_markedly_worse(self, results):
        """Modulo fencing ~29% over native in the paper."""
        overhead = results["modulo"] / results["native"] - 1
        assert overhead > results["bitwise"] / results["native"] - 1

    def test_checking_most_expensive(self, results):
        """Conditional checks are the costliest mode (1.7x native in
        the paper)."""
        assert results["checking"] == max(results.values())
        assert results["checking"] / results["native"] > 1.25
