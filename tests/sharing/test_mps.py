"""MPS baseline tests — the unprotected spatial-sharing model."""

import numpy as np
import pytest

from repro.errors import DriverError
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.runtime.api import CudaRuntime
from repro.runtime.backend import GpuBackend
from repro.runtime.interpose import LIBCUDA, DynamicLoader
from repro.sharing.mps import (
    MPS_DISPATCH_CYCLES,
    MPS_LAUNCH_DISPATCH_CYCLES,
    MPSClient,
    MPSServer,
)
from repro.driver.fatbin import build_fatbin

from tests.conftest import saxpy_module


@pytest.fixture
def mps():
    device = Device(QUADRO_RTX_A4000)
    return device, MPSServer(device)


def client_runtime(server, app_id):
    loader = DynamicLoader()
    loader.register(LIBCUDA, MPSClient(server, app_id))
    return CudaRuntime(loader)


class TestServer:
    def test_single_shared_context(self, mps):
        device, server = mps
        client_runtime(server, "a")
        client_runtime(server, "b")
        assert len(device.contexts) == 1

    def test_per_client_streams(self, mps):
        _, server = mps
        client_runtime(server, "a")
        client_runtime(server, "b")
        assert (server._clients["a"].stream.stream_id
                != server._clients["b"].stream.stream_id)

    def test_allocations_interleave_one_space(self, mps):
        """The unprotected property: clients' buffers are adjacent in
        one address space, nothing between them."""
        _, server = mps
        alice = client_runtime(server, "a")
        bob = client_runtime(server, "b")
        a1 = alice.cudaMalloc(4096)
        b1 = bob.cudaMalloc(4096)
        a2 = alice.cudaMalloc(4096)
        assert b1 == a1 + 4096
        assert a2 == b1 + 4096

    def test_duplicate_client_rejected(self, mps):
        _, server = mps
        client_runtime(server, "a")
        with pytest.raises(DriverError):
            MPSClient(server, "a")

    def test_handles_per_client(self, mps):
        _, server = mps
        alice = client_runtime(server, "a")
        bob = client_runtime(server, "b")
        fatbin = build_fatbin(saxpy_module(), "lib", "11.7")
        alice_handles = alice.registerFatBinary(fatbin)
        with pytest.raises(DriverError):
            bob.cudaLaunchKernel(alice_handles["saxpy"],
                                 (1, 1, 1), (1, 1, 1), [0, 0, 1.0, 0])


class TestClient:
    def test_implements_backend_interface(self, mps):
        _, server = mps
        assert isinstance(MPSClient(server, "x"), GpuBackend)

    def test_end_to_end_kernel(self, mps):
        _, server = mps
        runtime = client_runtime(server, "a")
        handles = runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        buffer = runtime.cudaMalloc(512)
        runtime.cudaMemcpyH2D(
            buffer + 256, np.ones(32, dtype=np.float32).tobytes())
        runtime.cudaLaunchKernel(handles["saxpy"], (1, 1, 1),
                                 (32, 1, 1),
                                 [buffer, buffer + 256, 2.0, 32])
        out = np.frombuffer(runtime.cudaMemcpyD2H(buffer, 128),
                            dtype=np.float32)
        assert np.allclose(out, 2.0)

    def test_no_protection_no_patching(self, mps):
        """MPS launches the original kernel — no sandboxing exists."""
        device, server = mps
        runtime = client_runtime(server, "a")
        handles = runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        function = server._clients["a"].functions[handles["saxpy"]]
        opcodes = [i.opcode
                   for i in function.compiled.kernel.instructions()]
        assert "and.b64" not in opcodes


class TestCostModel:
    def test_launch_dispatch_exceeds_guardian_lookup(self):
        """MPS's per-launch daemon work exceeds Guardian's bare
        pointerToSymbol lookup — how 'no-protection beats MPS on
        kernel-heavy workloads' (§6.1) arises."""
        from repro.core.server import ServerCostModel

        assert MPS_LAUNCH_DISPATCH_CYCLES > ServerCostModel().lookup

    def test_server_busy_accumulates(self, mps):
        _, server = mps
        runtime = client_runtime(server, "a")
        before = server.stats.cycles
        runtime.cudaMalloc(64)
        assert server.stats.cycles > before
        assert server.stats.cycles - before >= MPS_DISPATCH_CYCLES
