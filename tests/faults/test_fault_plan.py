"""FaultPlan semantics: deterministic, keyed on (tenant, op, call #)."""

from repro.driver.fatbin import build_fatbin
from repro.faults.inject import mutate_fatbin, mutate_ptx_text
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, Site

from tests.conftest import saxpy_module


class TestMatching:
    def test_fires_on_exact_call_number(self):
        plan = FaultPlan([FaultSpec(FaultKind.IPC_DROP, tenant="a", op="malloc", at_call=3)])
        assert plan.fire(Site.SERVER, "a", "malloc") is None
        assert plan.fire(Site.SERVER, "a", "malloc") is None
        fired = plan.fire(Site.SERVER, "a", "malloc")
        assert fired is not None and fired.kind is FaultKind.IPC_DROP
        assert fired.call_no == 3
        assert plan.fire(Site.SERVER, "a", "malloc") is None

    def test_counters_keyed_per_tenant_and_op(self):
        plan = FaultPlan([FaultSpec(FaultKind.IPC_DROP, tenant="a", op="malloc", at_call=2)])
        # Other tenants and other ops advance separate counters.
        assert plan.fire(Site.SERVER, "b", "malloc") is None
        assert plan.fire(Site.SERVER, "a", "free") is None
        assert plan.fire(Site.SERVER, "a", "malloc") is None
        assert plan.fire(Site.SERVER, "b", "malloc") is None
        assert plan.fire(Site.SERVER, "a", "malloc") is not None
        assert plan.call_count(Site.SERVER, "a", "malloc") == 2

    def test_wildcard_tenant(self):
        plan = FaultPlan([FaultSpec(FaultKind.IPC_DELAY, tenant=None, op="synchronize", at_call=1)])
        assert plan.fire(Site.SERVER, "x", "synchronize") is not None
        assert plan.fire(Site.SERVER, "y", "synchronize") is not None

    def test_every_fires_periodically(self):
        plan = FaultPlan([FaultSpec(FaultKind.IPC_DUPLICATE, tenant="a", op="malloc", every=2)])
        hits = [plan.fire(Site.SERVER, "a", "malloc") is not None for _ in range(6)]
        assert hits == [False, True, False, True, False, True]

    def test_kind_restricted_to_its_default_ops(self):
        plan = FaultPlan([FaultSpec(FaultKind.ALLOC_EXHAUST, tenant="a", at_call=1)])
        # ALLOC_EXHAUST only targets malloc; a free call can't fire it.
        assert plan.fire(Site.SERVER, "a", "free") is None
        assert plan.fire(Site.SERVER, "a", "malloc") is not None

    def test_client_and_server_sites_are_separate(self):
        plan = FaultPlan([FaultSpec(FaultKind.CLIENT_CRASH, tenant="a", op="malloc", at_call=2)])
        # Server-side consultations never advance the client counter.
        assert plan.fire(Site.SERVER, "a", "malloc") is None
        assert plan.fire(Site.SERVER, "a", "malloc") is None
        assert plan.fire(Site.CLIENT, "a", "malloc") is None
        assert plan.fire(Site.CLIENT, "a", "malloc") is not None


class TestDeterminism:
    def _drive(self, plan):
        trace = []
        for tenant in ("a", "b"):
            for op in ("malloc", "launch_kernel", "synchronize"):
                for _ in range(10):
                    fired = plan.fire(Site.SERVER, tenant, op)
                    if fired is not None:
                        trace.append(
                            (
                                tenant,
                                op,
                                fired.call_no,
                                fired.kind.value,
                                fired.delay_cycles,
                                fired.truncate_at,
                                fired.corrupt_byte,
                                fired.reason,
                            )
                        )
        return trace

    def test_same_seed_same_schedule(self):
        for seed in range(5):
            plans = [FaultPlan.chaos(seed, ["a", "b"], calls_per_tenant=10) for _ in range(2)]
            assert list(plans[0].specs) == list(plans[1].specs)
            assert self._drive(plans[0]) == self._drive(plans[1])

    def test_different_seeds_differ(self):
        schedules = {
            tuple(self._drive(FaultPlan.chaos(seed, ["a", "b"], calls_per_tenant=10)))
            for seed in range(5)
        }
        assert len(schedules) > 1

    def test_parameters_drawn_from_seeded_rng(self):
        spec = FaultSpec(FaultKind.IPC_DELAY, tenant="a", op="synchronize", at_call=1)
        first = FaultPlan([spec], seed=7).fire(Site.SERVER, "a", "synchronize")
        second = FaultPlan([spec], seed=7).fire(Site.SERVER, "a", "synchronize")
        assert first.delay_cycles == second.delay_cycles > 0


class TestMutators:
    def test_truncate_ptx_text(self):
        text = "\n".join(f"line{i}" for i in range(100))
        spec = FaultSpec(FaultKind.PTX_TRUNCATE)
        fired = FaultPlan([spec], seed=1)._parameterise(spec, "a", "load_module_ptx", 1)
        mutated = mutate_ptx_text(text, fired)
        assert 0 < len(mutated) < len(text)
        assert text.startswith(mutated)

    def test_corrupt_ptx_text_preserves_length(self):
        text = "x" * 400
        spec = FaultSpec(FaultKind.PTX_CORRUPT)
        fired = FaultPlan([spec], seed=2)._parameterise(spec, "a", "load_module_ptx", 1)
        mutated = mutate_ptx_text(text, fired)
        assert len(mutated) == len(text)
        assert mutated != text

    def test_mutate_fatbin_rebuilds_entries(self):
        fatbin = build_fatbin(saxpy_module(), "lib", "11.7")
        spec = FaultSpec(FaultKind.PTX_TRUNCATE)
        fired = FaultPlan([spec], seed=3)._parameterise(spec, "a", "register_fatbin", 1)
        mutated = mutate_fatbin(fatbin, fired)
        assert mutated is not fatbin
        assert len(mutated.entries) == len(fatbin.entries)
        assert all(
            len(m.payload) <= len(o.payload) for m, o in zip(mutated.entries, fatbin.entries)
        )
        # The original is untouched (plans must not mutate in place).
        assert fatbin.entries[0].payload


class TestNodeSites:
    def test_node_kinds_route_to_node_site(self):
        for kind in (FaultKind.HEARTBEAT_LOSS, FaultKind.NODE_CRASH,
                     FaultKind.SNAPSHOT_PARTIAL):
            assert kind.site is Site.NODE

    def test_after_gates_until_call_counter_passes(self):
        plan = FaultPlan([FaultSpec(
            FaultKind.HEARTBEAT_LOSS, tenant="node0", op="heartbeat",
            every=1, after=3,
        )])
        fires = [plan.fire(Site.NODE, "node0", "heartbeat") is not None
                 for _ in range(6)]
        assert fires == [False, False, False, True, True, True]

    def test_chaos_excludes_node_kinds(self):
        """chaos() predates the node sites; its draw sequence — and
        therefore every historical gauntlet seed — must not shift."""
        plan = FaultPlan.chaos(seed=0, tenants=("a", "b"))
        assert all(s.kind.site is not Site.NODE for s in plan.specs)

    def test_node_chaos_is_deterministic(self):
        nodes = ("node0", "node1")
        first = FaultPlan.node_chaos(seed=4, nodes=nodes, tenants=("a",))
        second = FaultPlan.node_chaos(seed=4, nodes=nodes, tenants=("a",))
        assert [
            (s.kind, s.tenant, s.op, s.at_call, s.every, s.after)
            for s in first.specs
        ] == [
            (s.kind, s.tenant, s.op, s.at_call, s.every, s.after)
            for s in second.specs
        ]

    def test_node_chaos_targets_a_node(self):
        nodes = ("node0", "node1", "node2")
        plan = FaultPlan.node_chaos(seed=2, nodes=nodes)
        node_specs = [s for s in plan.specs if s.kind.site is Site.NODE]
        assert node_specs, "node_chaos must inject node faults"
        assert all(s.tenant in nodes for s in node_specs)
        # The sustained outage: a heartbeat burst with an onset delay.
        burst = [s for s in node_specs
                 if s.kind is FaultKind.HEARTBEAT_LOSS and s.every == 1]
        assert burst and burst[0].after is not None

    def test_node_chaos_rides_tenant_chaos(self):
        """Tenant-level specs inside node_chaos match plain chaos() —
        the node RNG is decoupled from the tenant draws."""
        tenants = ("a", "b")
        plain = FaultPlan.chaos(seed=7, tenants=tenants,
                                faults_per_tenant=2)
        combined = FaultPlan.node_chaos(
            seed=7, nodes=("node0",), tenants=tenants)
        tenant_specs = [s for s in combined.specs
                        if s.kind.site is not Site.NODE]
        assert [
            (s.kind, s.tenant, s.op, s.at_call) for s in tenant_specs
        ] == [
            (s.kind, s.tenant, s.op, s.at_call) for s in plain.specs
        ]

    def test_snapshot_partial_draws_truncation(self):
        spec = FaultSpec(FaultKind.SNAPSHOT_PARTIAL, tenant="node0",
                         op="migrate")
        fired = FaultPlan([spec], seed=1)._parameterise(
            spec, "node0", "migrate", 1)
        assert 0.0 < fired.truncate_at <= 0.95

    def test_node_crash_draws_a_reason(self):
        spec = FaultSpec(FaultKind.NODE_CRASH, tenant="node0",
                         op="heartbeat")
        fired = FaultPlan([spec], seed=1)._parameterise(
            spec, "node0", "heartbeat", 1)
        assert fired.reason
