"""TenantSupervisor: deadlines, retries, budget, quarantine, containment."""

import numpy as np
import pytest

from repro import FencingMode, GuardianSystem
from repro.analysis.metrics import collect_faults
from repro.analysis.reporting import render_failure_report
from repro.core.server import GuardianServer
from repro.core.supervisor import SupervisorPolicy, TenantSupervisor
from repro.driver.fatbin import build_fatbin
from repro.errors import (
    AllocationError,
    BoundsViolation,
    ClientCrashed,
    GuardianError,
    StreamFault,
    TenantQuarantined,
    TransientIPCFault,
)
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000

from tests.conftest import saxpy_module

PARTITION = 1 << 20


def system_with(specs, seed=0, policy=None):
    return GuardianSystem(fault_plan=FaultPlan(specs, seed=seed), policy=policy)


class TestTransientIPCFaults:
    def test_drop_within_budget_is_retried_transparently(self):
        sys = system_with([FaultSpec(FaultKind.IPC_DROP, tenant="a", op="malloc", times=2)])
        tenant = sys.attach("a", PARTITION)
        assert tenant.runtime.cudaMalloc(256) > 0  # the call still lands
        (record,) = [r for r in sys.supervisor.records if r.action == "retried"]
        assert record.kind == "ipc_drop"
        assert record.attempts == 2
        assert record.cycles > 0

    def test_retry_backoff_is_charged_to_the_caller(self):
        policy = SupervisorPolicy()
        sys = system_with(
            [FaultSpec(FaultKind.IPC_DROP, tenant="a", op="malloc", at_call=2, times=3)]
        )
        tenant = sys.attach("a", PARTITION)
        server = sys.server
        tenant.runtime.cudaMalloc(64)
        clean = server.stats.cycles
        tenant.runtime.cudaMalloc(64)  # the faulted call
        faulted_delta = server.stats.cycles - clean
        backoff = sum(policy.backoff_base_cycles * 2**i for i in range(3))
        expected = server.costs.malloc + server.costs.driver.malloc + backoff
        assert faulted_delta == pytest.approx(expected)

    def test_exhausted_retries_surface_ipc_error(self):
        sys = system_with([FaultSpec(FaultKind.IPC_CORRUPT, tenant="a", op="malloc", times=99)])
        tenant = sys.attach("a", PARTITION)
        with pytest.raises(TransientIPCFault):
            tenant.runtime.cudaMalloc(256)
        (record,) = [r for r in sys.supervisor.records if r.action == "exhausted"]
        assert record.kind == "ipc_corrupt"
        # A clean retry later still works: the tenant is not dead yet.
        assert tenant.runtime.cudaMalloc(256) > 0

    def test_duplicate_delivery_executes_once(self):
        sys = system_with([FaultSpec(FaultKind.IPC_DUPLICATE, tenant="a", op="malloc")])
        tenant = sys.attach("a", PARTITION)
        tenant.runtime.cudaMalloc(256)
        heap_used = sys.server.allocator.partition("a").heap.bytes_in_use
        assert heap_used == 256  # not 512: the duplicate was suppressed
        assert any(r.action == "suppressed" for r in sys.supervisor.records)

    def test_delay_trips_the_deadline(self):
        policy = SupervisorPolicy(deadline_cycles=100_000.0)
        sys = system_with(
            [FaultSpec(FaultKind.IPC_DELAY, tenant="a", op="synchronize", magnitude=1.0)],
            policy=policy,
        )
        tenant = sys.attach("a", PARTITION)
        tenant.runtime.cudaDeviceSynchronize()
        metrics = collect_faults(sys.supervisor)
        assert metrics.deadline_violations == 1
        assert metrics.by_action.get("delayed") == 1


class TestModuleFaults:
    def test_truncated_ptx_rejected_cleanly(self):
        sys = system_with(
            [FaultSpec(FaultKind.PTX_TRUNCATE, tenant="a", op="load_module_ptx")], seed=11
        )
        tenant = sys.attach("a", PARTITION)
        from repro.ptx.emitter import emit_module

        text = emit_module(saxpy_module())
        with pytest.raises(Exception) as failure:
            tenant.client.load_module_ptx(text)
        assert not isinstance(failure.value, AssertionError)
        # Clean rejection, recorded, and the tenant still works.
        assert any(r.action == "rejected" for r in sys.supervisor.records)
        assert tenant.runtime.cudaMalloc(128) > 0
        assert "saxpy" in tenant.client.load_module_ptx(text)

    def test_corrupted_fatbin_never_crashes_the_server(self):
        for seed in range(6):
            sys = system_with(
                [FaultSpec(FaultKind.PTX_CORRUPT, tenant="a", op="register_fatbin")], seed=seed
            )
            tenant = sys.attach("a", PARTITION)
            fatbin = build_fatbin(saxpy_module(), "lib", "11.7")
            try:
                tenant.runtime.registerFatBinary(fatbin)
            except GuardianError:
                pass
            except Exception as failure:
                # Any non-Repro error would have been a server crash.
                from repro.errors import ReproError

                assert isinstance(failure, ReproError), failure
            # The server survived; a healthy deploy goes through.
            clean = build_fatbin(saxpy_module(), "lib", "11.7")
            assert "saxpy" in tenant.runtime.registerFatBinary(clean)


class TestAllocatorFaults:
    def test_injected_exhaustion_is_a_clean_allocation_error(self):
        sys = system_with([FaultSpec(FaultKind.ALLOC_EXHAUST, tenant="a", at_call=2)])
        tenant = sys.attach("a", PARTITION)
        first = tenant.runtime.cudaMalloc(128)
        assert first > 0
        with pytest.raises(AllocationError, match="injected"):
            tenant.runtime.cudaMalloc(128)
        assert tenant.runtime.cudaMalloc(128) > 0


class TestStreamFaults:
    def _wedge(self, policy=None):
        sys = system_with(
            [FaultSpec(FaultKind.STREAM_FAULT, tenant="bad", op="launch_kernel")],
            seed=5,
            policy=policy,
        )
        bad = sys.attach("bad", PARTITION)
        handles = bad.runtime.registerFatBinary(build_fatbin(saxpy_module(), "lib", "11.7"))
        buf = bad.runtime.cudaMalloc(512)
        bad.runtime.cudaMemcpyH2D(buf + 256, np.ones(32, dtype=np.float32).tobytes())
        bad.runtime.cudaLaunchKernel(
            handles["saxpy"], (1, 1, 1), (32, 1, 1), [buf, buf + 256, 2.0, 32]
        )
        return sys, bad

    def test_fault_surfaces_at_next_ordering_point(self):
        sys, bad = self._wedge()
        with pytest.raises(StreamFault):
            bad.runtime.cudaDeviceSynchronize()

    def test_wedged_stream_quarantines_the_tenant(self):
        sys, bad = self._wedge()
        with pytest.raises(StreamFault):
            bad.runtime.cudaDeviceSynchronize()
        with pytest.raises(TenantQuarantined):
            bad.runtime.cudaMalloc(64)
        assert sys.supervisor.is_quarantined("bad")
        assert sys.server.tenant_count == 0
        assert sys.server.stats.streams_destroyed == 1
        (record,) = sys.supervisor.quarantines
        assert record.tenant == "bad"
        assert "stream fault" in record.reason
        assert record.bytes_scrubbed == PARTITION


class TestQuarantineContainment:
    def _storm(self):
        """One violator hammers the fence until quarantined, next to a
        healthy neighbour with live state."""
        policy = SupervisorPolicy(fault_budget=6.0)
        sys = GuardianSystem(policy=policy)
        good = sys.attach("good", PARTITION)
        bad = sys.attach("bad", PARTITION)
        handles = good.runtime.registerFatBinary(build_fatbin(saxpy_module(), "lib", "11.7"))
        buf = good.runtime.cudaMalloc(512)
        good.runtime.cudaMemcpyH2D(buf + 256, np.ones(32, dtype=np.float32).tobytes())
        bad_buf = bad.runtime.cudaMalloc(512)
        return sys, good, bad, handles, buf, bad_buf

    def test_violation_budget_escalates_to_quarantine(self):
        sys, good, bad, handles, buf, bad_buf = self._storm()
        outside = sys.server.allocator.bounds.lookup("good").base
        raised = 0
        for _ in range(3):
            try:
                bad.runtime.cudaMemcpyH2D(outside, b"attack")
                bad.runtime.cudaDeviceSynchronize()
            except BoundsViolation:
                raised += 1
            except TenantQuarantined:
                break
        assert raised >= 2  # weight 2.0 each against a budget of 6
        with pytest.raises(TenantQuarantined):
            bad.runtime.cudaMalloc(64)

    def test_neighbour_epochs_and_data_unaffected(self):
        sys, good, bad, handles, buf, bad_buf = self._storm()
        epochs_before = sys.server.allocator.bounds.epochs()
        outside = sys.server.allocator.bounds.lookup("good").base
        for _ in range(4):
            try:
                bad.runtime.cudaMemcpyH2D(outside, b"attack")
            except (BoundsViolation, TenantQuarantined):
                pass
        assert sys.supervisor.is_quarantined("bad")
        epochs_after = sys.server.allocator.bounds.epochs()
        # Only the quarantined tenant's row moved.
        survivors_after = {k: v for k, v in epochs_after.items() if k != "bad"}
        survivors_before = {k: v for k, v in epochs_before.items() if k != "bad"}
        assert survivors_after == survivors_before
        # The neighbour's pipeline still runs end to end.
        good.runtime.cudaLaunchKernel(
            handles["saxpy"], (1, 1, 1), (32, 1, 1), [buf, buf + 256, 2.0, 32]
        )
        out = np.frombuffer(good.runtime.cudaMemcpyD2H(buf, 128), dtype=np.float32)
        assert np.allclose(out, 2.0)

    def test_quarantine_scrubs_the_partition(self):
        sys, good, bad, handles, buf, bad_buf = self._storm()
        bad.runtime.cudaMemcpyH2D(bad_buf, b"secret!" * 64)
        bad.runtime.cudaDeviceSynchronize()
        record = sys.server.allocator.bounds.lookup("bad")
        base, size = record.base, record.size
        assert b"secret!" in sys.device.memory.read(base, size)
        sys.supervisor.reap("bad")
        assert sys.device.memory.read(base, size) == bytes(size)

    def test_readmission_after_quarantine(self):
        sys, good, bad, handles, buf, bad_buf = self._storm()
        sys.supervisor.reap("bad")
        assert sys.supervisor.is_quarantined("bad")
        reborn = sys.attach("bad", PARTITION)
        assert not sys.supervisor.is_quarantined("bad")
        assert reborn.runtime.cudaMalloc(64) > 0


class TestClientCrash:
    def test_crash_mid_batch_is_contained(self):
        from repro.core.server import ServerConfig

        plan = FaultPlan(
            [FaultSpec(FaultKind.CLIENT_CRASH, tenant="dead", op="launch_kernel", at_call=3)]
        )
        sys = GuardianSystem(config=ServerConfig.hotpath(), fault_plan=plan)
        dead = sys.attach("dead", PARTITION)
        survivor = sys.attach("survivor", PARTITION)
        handles = dead.runtime.registerFatBinary(build_fatbin(saxpy_module(), "lib", "11.7"))
        buf = dead.runtime.cudaMalloc(512)
        with pytest.raises(ClientCrashed):
            for _ in range(5):
                dead.runtime.cudaLaunchKernel(
                    handles["saxpy"], (1, 1, 1), (16, 1, 1), [buf, buf + 256, 1.0, 16]
                )
        # The crash stranded a non-empty batch in the channel.
        assert dead.client.channel.queued_calls > 0
        sys.reap("dead")
        # The batch was discarded, not delivered posthumously.
        assert dead.client.channel.stats.discarded_calls > 0
        assert sys.server.tenant_count == 1
        assert any(r.action == "reaped" for r in sys.supervisor.records)
        # Partition is recyclable and the survivor unharmed.
        late = sys.attach("late", PARTITION)
        assert late.runtime.cudaMalloc(128) > 0
        assert survivor.runtime.cudaMalloc(128) > 0

    def test_detach_of_crashed_client_reaps(self):
        plan = FaultPlan([FaultSpec(FaultKind.CLIENT_CRASH, tenant="dead", op="malloc")])
        sys = GuardianSystem(fault_plan=plan)
        dead = sys.attach("dead", PARTITION)
        with pytest.raises(ClientCrashed):
            dead.runtime.cudaMalloc(64)
        sys.detach("dead")
        assert sys.server.tenant_count == 0
        assert dead.client.channel.closed


class TestNoPlanPassThrough:
    """Supervision with no plan must be invisible: bit-identical costs."""

    def _charge_trace(self, target, server):
        trace = []
        _, cycles = target.attach("a", PARTITION)
        trace.append(cycles)
        handles, cycles = target.register_fatbin("a", build_fatbin(saxpy_module(), "lib", "11.7"))
        trace.append(cycles)
        buf, cycles = target.malloc("a", 512)
        trace.append(cycles)
        _, cycles = target.memcpy_h2d("a", buf, np.ones(64, dtype=np.float32).tobytes())
        trace.append(cycles)
        _, cycles = target.launch_kernel(
            "a", handles["saxpy"], (1, 1, 1), (64, 1, 1), [buf, buf, 2.0, 64]
        )
        trace.append(cycles)
        _, cycles = target.synchronize("a")
        trace.append(cycles)
        _, cycles = target.free("a", buf)
        trace.append(cycles)
        trace.append(server.stats.cycles)
        return trace

    def test_supervised_costs_bit_identical_to_stock(self):
        stock = GuardianServer(Device(QUADRO_RTX_A4000), FencingMode.BITWISE)
        supervised_server = GuardianServer(Device(QUADRO_RTX_A4000), FencingMode.BITWISE)
        supervisor = TenantSupervisor(supervised_server)
        stock_trace = self._charge_trace(stock, stock)
        supervised_trace = self._charge_trace(supervisor, supervised_server)
        assert stock_trace == supervised_trace
        assert supervisor.records == []
        assert supervisor.quarantines == []


class TestFailureReporting:
    def test_report_renders_quarantine_event(self):
        sys = system_with(
            [FaultSpec(FaultKind.STREAM_FAULT, tenant="bad", op="memcpy_h2d")], seed=5
        )
        bad = sys.attach("bad", PARTITION)
        buf = bad.runtime.cudaMalloc(256)
        bad.runtime.cudaMemcpyH2D(buf, b"x" * 256)
        with pytest.raises(StreamFault):
            bad.runtime.cudaDeviceSynchronize()
        metrics = collect_faults(sys.supervisor)
        assert metrics.quarantines == 1
        assert metrics.by_kind.get("stream_fault")
        report = render_failure_report(metrics)
        assert "QUARANTINED" in report
        assert "stream_fault" in report
        assert "bytes scrubbed" in report


class TestBackoffJitter:
    def _supervisor(self, jitter, seed=11):
        server = GuardianServer(Device(QUADRO_RTX_A4000),
                                FencingMode.BITWISE)
        return TenantSupervisor(
            server,
            plan=FaultPlan([], seed=seed),
            policy=SupervisorPolicy(backoff_jitter=jitter),
        )

    def test_zero_jitter_is_exact_stock_sum(self):
        supervisor = self._supervisor(jitter=0.0)
        base = supervisor.policy.backoff_base_cycles
        assert supervisor._backoff_cycles(3) == base * (1 + 2 + 4)

    def test_zero_jitter_never_draws(self):
        """Enabling jitter in one run must not shift another run's RNG
        draws — with jitter off the RNG is never consulted."""
        supervisor = self._supervisor(jitter=0.0)
        before = supervisor._jitter_rng.getstate()
        supervisor._backoff_cycles(3)
        assert supervisor._jitter_rng.getstate() == before

    def test_jitter_bounded_per_step(self):
        supervisor = self._supervisor(jitter=0.5)
        base = supervisor.policy.backoff_base_cycles
        for attempts in (1, 2, 3):
            exact = base * (2 ** attempts - 1)
            jittered = self._supervisor(jitter=0.5)._backoff_cycles(
                attempts)
            assert exact * 0.75 <= jittered <= exact * 1.25
            assert jittered != exact

    def test_jitter_is_seeded_from_the_plan(self):
        """Same plan seed, same draws — gauntlet runs stay
        reproducible; a different seed jitters differently."""
        first = self._supervisor(jitter=0.25, seed=5)
        second = self._supervisor(jitter=0.25, seed=5)
        other = self._supervisor(jitter=0.25, seed=6)
        trace_a = [first._backoff_cycles(3) for _ in range(4)]
        trace_b = [second._backoff_cycles(3) for _ in range(4)]
        trace_c = [other._backoff_cycles(3) for _ in range(4)]
        assert trace_a == trace_b
        assert trace_a != trace_c

    def test_install_plan_reseeds_jitter(self):
        supervisor = self._supervisor(jitter=0.25, seed=5)
        first = supervisor._backoff_cycles(3)
        supervisor.install_plan(FaultPlan([], seed=5))
        assert supervisor._backoff_cycles(3) == first

    def test_retry_path_charges_jittered_cycles(self):
        """End-to-end: a retried drop with jitter on still recovers,
        and two identically-seeded systems charge identical cycles."""
        def run():
            policy = SupervisorPolicy(backoff_jitter=0.3)
            sys = system_with(
                [FaultSpec(FaultKind.IPC_DROP, tenant="a",
                           op="malloc", at_call=1, times=2)],
                seed=9, policy=policy,
            )
            tenant = sys.attach("a", PARTITION)
            tenant.runtime.cudaMalloc(256)
            return [(r.action, r.cycles) for r in sys.supervisor.records]

        first, second = run(), run()
        assert first == second
        assert first[0][0] == "retried"
        assert first[0][1] > 0
