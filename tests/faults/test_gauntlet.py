"""The fault gauntlet: chaos plans must never crash the server.

CI runs this file once per ``GUARDIAN_FAULT_SEED`` in the seed matrix
(0..4). Every injected fault must end in a clean retry, a clean
per-call error, or a quarantine — and afterwards the server must still
serve: never-faulted tenants complete every round with correct
results, and a fresh tenant can attach and run a full pipeline.
"""

import os

import numpy as np
import pytest

from repro import GuardianSystem
from repro.core.supervisor import SupervisorPolicy
from repro.driver.fatbin import build_fatbin
from repro.errors import (
    ClientCrashed,
    PartitionError,
    ReproError,
    TenantQuarantined,
)
from repro.faults.plan import FaultPlan

from tests.conftest import saxpy_module

SEED = int(os.environ.get("GUARDIAN_FAULT_SEED", "0"))
TENANTS = [f"chaos{i}" for i in range(4)]
PARTITION = 1 << 20
ROUNDS = 16

#: Every supervisor action the gauntlet may legitimately produce.
ALLOWED_ACTIONS = {
    "retried", "exhausted", "suppressed", "delayed", "rejected",
    "fenced", "armed", "deadline", "quarantined", "reaped",
}


class _Driver:
    """Drives one tenant through the workload, absorbing clean faults."""

    def __init__(self, system, app_id):
        self.system = system
        self.app_id = app_id
        self.handles = None
        self.rounds_completed = 0
        self.dead = False
        try:
            self.tenant = system.attach(app_id, PARTITION)
        except ReproError:
            # Even the attach crossing can be killed by the plan.
            self.tenant = None
            self.dead = True

    def _guard(self, fn):
        """Run one call; only clean Guardian failures may escape."""
        if self.dead:
            return None
        try:
            return fn()
        except ClientCrashed:
            self.system.reap(self.app_id)
            self.dead = True
        except TenantQuarantined:
            self.system.detach(self.app_id)
            self.dead = True
        except ReproError:
            pass  # clean per-call rejection; the tenant lives on
        return None

    def register(self):
        fatbin = build_fatbin(saxpy_module(), "lib", "11.7")
        self.handles = self._guard(lambda: self.tenant.runtime.registerFatBinary(fatbin))

    def round(self):
        if self.dead:
            return
        runtime = self.tenant.runtime
        buf = self._guard(lambda: runtime.cudaMalloc(512))
        if buf is None:
            return
        ones = np.ones(32, dtype=np.float32).tobytes()
        self._guard(lambda: runtime.cudaMemcpyH2D(buf + 256, ones))
        if self.handles and "saxpy" in self.handles:
            self._guard(
                lambda: runtime.cudaLaunchKernel(
                    self.handles["saxpy"], (1, 1, 1), (32, 1, 1), [buf, buf + 256, 2.0, 32]
                )
            )
        self._guard(lambda: runtime.cudaDeviceSynchronize())
        self._guard(lambda: runtime.cudaMemcpyD2H(buf, 128))
        self._guard(lambda: runtime.cudaFree(buf))
        if not self.dead:
            self.rounds_completed += 1


def run_gauntlet(seed):
    plan = FaultPlan.chaos(seed, TENANTS, calls_per_tenant=2 * ROUNDS)
    system = GuardianSystem(
        fault_plan=plan,
        policy=SupervisorPolicy(fault_budget=6.0),
    )
    drivers = [_Driver(system, app_id) for app_id in TENANTS]
    survivor = _Driver(system, "survivor")  # never in the chaos plan
    for driver in drivers + [survivor]:
        driver.register()
    for _ in range(ROUNDS):
        for driver in drivers:
            driver.round()
        survivor.round()
    return system, drivers, survivor


class TestGauntlet:
    def test_chaos_never_crashes_the_server(self):
        # _Driver._guard re-raises anything that is not a ReproError,
        # so reaching the assertions at all means no server crash.
        system, drivers, survivor = run_gauntlet(SEED)

        # Every supervisor action taken is an understood one.
        actions = {record.action for record in system.supervisor.records}
        assert actions <= ALLOWED_ACTIONS

        # The untouched tenant completed every round, correctly.
        assert not survivor.dead
        assert survivor.rounds_completed == ROUNDS
        out = survivor._guard(lambda: survivor.tenant.runtime.cudaMalloc(512))
        assert out is not None

        # The server still serves: a fresh tenant runs a full pipeline.
        fresh = system.attach("fresh", PARTITION)
        handles = fresh.runtime.registerFatBinary(build_fatbin(saxpy_module(), "lib", "11.7"))
        buf = fresh.runtime.cudaMalloc(512)
        fresh.runtime.cudaMemcpyH2D(buf + 256, np.ones(32, dtype=np.float32).tobytes())
        fresh.runtime.cudaLaunchKernel(
            handles["saxpy"], (1, 1, 1), (32, 1, 1), [buf, buf + 256, 2.0, 32]
        )
        result = np.frombuffer(fresh.runtime.cudaMemcpyD2H(buf, 128), dtype=np.float32)
        assert np.allclose(result, 2.0)

        # Quarantined tenants are detached; bookkeeping is consistent.
        quarantined = {record.tenant for record in system.supervisor.quarantines}
        for app_id in quarantined:
            assert system.supervisor.is_quarantined(app_id)
            with pytest.raises(PartitionError):
                system.server.allocator.bounds.lookup(app_id)

    @pytest.mark.parametrize("seed", range(5))
    def test_every_matrix_seed_is_survivable(self, seed):
        """A cheap local sweep of the CI seed matrix."""
        system, drivers, survivor = run_gauntlet(seed)
        assert survivor.rounds_completed == ROUNDS
        actions = {record.action for record in system.supervisor.records}
        assert actions <= ALLOWED_ACTIONS

    def test_chaos_plan_is_reproducible_across_runs(self):
        def trace(system):
            return [
                (r.tenant, r.op, r.kind, r.action, r.attempts)
                for r in system.supervisor.records
            ]

        assert trace(run_gauntlet(SEED)[0]) == trace(run_gauntlet(SEED)[0])
