"""Property: tenant faults are invisible to surviving tenants.

For *any* set of injected faults against one tenant and *any*
interleaving of its calls with its neighbours', the survivors observe
bit-identical state to a run in which the faulty tenant never existed:
same allocation addresses, same bounds-table epochs, same device-to-host
bytes from their launches.

Survivors attach before the faulty tenant so that global identifiers
(stream IDs, partition carve order) line up between the paired runs —
the property under test is containment of *faults*, not of attach
ordering, which is deterministic anyway.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GuardianSystem
from repro.core.server import ServerConfig
from repro.driver.fatbin import build_fatbin
from repro.errors import ClientCrashed, ReproError, TenantQuarantined
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

from tests.conftest import saxpy_module

PARTITION = 1 << 20
SURVIVORS = ("s0", "s1")

spec_strategy = st.builds(
    FaultSpec,
    kind=st.sampled_from(sorted(FaultKind, key=lambda k: k.value)),
    tenant=st.just("faulty"),
    op=st.none(),
    at_call=st.integers(min_value=1, max_value=8),
    every=st.none(),
    times=st.integers(min_value=1, max_value=5),
    magnitude=st.floats(min_value=0.5, max_value=1.5),
)


class _Script:
    """A fixed per-tenant op sequence, advanced one step at a time."""

    def __init__(self, system, app_id, observe):
        self.system = system
        self.app_id = app_id
        self.observe = observe  # survivor observables accumulator
        self.dead = False
        self.step_no = 0
        self.buf = None
        try:
            self.tenant = system.attach(app_id, PARTITION)
            self.handles = self.tenant.runtime.registerFatBinary(
                build_fatbin(saxpy_module(), "lib", "11.7")
            )
        except ReproError:
            self.tenant = None
            self.dead = True

    def _run(self, fn):
        if self.dead:
            return None
        if self.observe is None:
            # The faulty tenant: absorb its own clean failures.
            try:
                return fn()
            except ClientCrashed:
                self.system.reap(self.app_id)
                self.dead = True
            except TenantQuarantined:
                self.system.detach(self.app_id)
                self.dead = True
            except ReproError:
                pass
            return None
        # Survivors run unguarded: any failure IS a containment breach.
        return fn()

    def step(self):
        runtime = None if self.dead else self.tenant.runtime
        if self.dead:
            self.step_no += 1
            return
        phase = self.step_no % 5
        value = float(1 + self.step_no % 7)
        if phase == 0:
            self.buf = self._run(lambda: runtime.cudaMalloc(512))
            if self.observe is not None and self.buf is not None:
                self.observe.append(("malloc", self.app_id, self.buf))
        elif phase == 1 and self.buf is not None:
            data = np.full(32, value, dtype=np.float32).tobytes()
            self._run(lambda: runtime.cudaMemcpyH2D(self.buf + 256, data))
        elif phase == 2 and self.buf is not None:
            self._run(
                lambda: runtime.cudaLaunchKernel(
                    self.handles["saxpy"],
                    (1, 1, 1),
                    (32, 1, 1),
                    [self.buf, self.buf + 256, value, 32],
                )
            )
        elif phase == 3:
            self._run(lambda: runtime.cudaDeviceSynchronize())
        elif phase == 4 and self.buf is not None:
            out = self._run(lambda: runtime.cudaMemcpyD2H(self.buf, 128))
            if self.observe is not None and out is not None:
                self.observe.append(("d2h", self.app_id, out))
            self._run(lambda: runtime.cudaFree(self.buf))
            self.buf = None
        self.step_no += 1


def run_world(specs, schedule, seed, include_faulty, config=None):
    """Run the interleaved workload; return survivor observables."""
    observed = []
    if include_faulty:
        system = GuardianSystem(fault_plan=FaultPlan(specs, seed=seed),
                                config=config)
    else:
        system = GuardianSystem(config=config)
    scripts = {app_id: _Script(system, app_id, observed) for app_id in SURVIVORS}
    if include_faulty:
        scripts["faulty"] = _Script(system, "faulty", None)
    actors = [*SURVIVORS, "faulty"]
    for turn in schedule:
        actor = actors[turn % len(actors)]
        if actor in scripts:
            scripts[actor].step()
    epochs = system.server.allocator.bounds.epochs()
    observed.append(("epochs", {k: v for k, v in epochs.items() if k in SURVIVORS}))
    for app_id in SURVIVORS:
        partition = system.server.allocator.partition(app_id)
        observed.append(("heap", app_id, partition.heap.bytes_in_use))
        record = system.server.allocator.bounds.lookup(app_id)
        observed.append(("base", app_id, record.base, record.size))
    return observed


@given(
    specs=st.lists(spec_strategy, min_size=1, max_size=3),
    schedule=st.lists(st.integers(min_value=0, max_value=2), min_size=10, max_size=30),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=30, deadline=None)
def test_survivors_unaffected_by_any_fault_interleaving(specs, schedule, seed):
    with_faults = run_world(specs, schedule, seed, include_faulty=True)
    without = run_world(specs, schedule, seed, include_faulty=False)
    assert with_faults == without


@given(
    specs=st.lists(spec_strategy, min_size=1, max_size=3),
    schedule=st.lists(st.integers(min_value=0, max_value=2), min_size=10, max_size=30),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=20, deadline=None)
def test_survivors_unaffected_with_concurrent_dispatch(specs, schedule, seed):
    """The containment property holds with per-tenant dispatch lanes:
    a quarantine drains *one lane*; sibling tenants' epochs, partitions
    and data are bit-identical to a world without the faulty tenant."""
    config = ServerConfig.concurrent()
    with_faults = run_world(specs, schedule, seed, include_faulty=True,
                            config=config)
    without = run_world(specs, schedule, seed, include_faulty=False,
                        config=config)
    assert with_faults == without
