"""End-to-end isolation tests — the paper's threat model, executed.

Multiple tenants run through the full Guardian stack (preloaded shim ->
IPC -> server -> patched kernels -> simulated memory); attackers use
kernels with attacker-controlled pointers, hostile transfers, and
hostile frees. Every test asserts on real memory contents.
"""

import numpy as np
import pytest

from repro.errors import AllocationError, BoundsViolation
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer
from repro.driver.fatbin import build_fatbin
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000

from tests.conftest import (
    attack_module,
    download_array,
    make_guardian_tenant,
    upload_array,
)

MODES = [FencingMode.BITWISE, FencingMode.MODULO, FencingMode.CHECKING]


def guardian_world(mode):
    device = Device(QUADRO_RTX_A4000)
    server = GuardianServer(device, mode)
    alice_client, alice = make_guardian_tenant(server, "alice")
    mallory_client, mallory = make_guardian_tenant(server, "mallory")
    return device, server, alice, mallory


@pytest.mark.parametrize("mode", MODES)
class TestKernelAttacks:
    def test_cross_partition_write_blocked(self, mode):
        device, server, alice, mallory = guardian_world(mode)
        secret = np.full(64, 7.0, dtype=np.float32)
        alice_buf = upload_array(alice, secret)

        handles = mallory.registerFatBinary(
            build_fatbin(attack_module(), "attack", "11.7"))
        mallory_buf = mallory.cudaMalloc(256)
        evil_offset = alice_buf - mallory_buf
        mallory.cudaLaunchKernel(handles["writer"], (1, 1, 1), (1, 1, 1),
                                 [mallory_buf, evil_offset, 0xBAD])

        assert np.array_equal(download_array(alice, alice_buf, 64),
                              secret)

    def test_cross_partition_read_blocked(self, mode):
        device, server, alice, mallory = guardian_world(mode)
        secret = np.array([0xCAFEBABE], dtype=np.uint32)
        alice_buf = alice.cudaMalloc(64)
        alice.cudaMemcpyH2D(alice_buf, secret.tobytes())

        handles = mallory.registerFatBinary(
            build_fatbin(attack_module(), "attack", "11.7"))
        mallory_buf = mallory.cudaMalloc(64)
        evil_offset = alice_buf - mallory_buf
        mallory.cudaLaunchKernel(handles["reader"], (1, 1, 1), (1, 1, 1),
                                 [mallory_buf, mallory_buf, evil_offset])
        leaked = np.frombuffer(mallory.cudaMemcpyD2H(mallory_buf, 4),
                               dtype=np.uint32)[0]
        assert leaked != 0xCAFEBABE

    def test_attack_sweep_over_whole_device(self, mode):
        """Mallory sweeps writes across a wide range of offsets; none
        of Alice's partition changes."""
        device, server, alice, mallory = guardian_world(mode)
        pattern = np.arange(256, dtype=np.float32)
        alice_buf = upload_array(alice, pattern)
        alice_record = server.allocator.bounds.lookup("alice")
        before = device.memory.read(alice_record.base,
                                    alice_record.size)

        handles = mallory.registerFatBinary(
            build_fatbin(attack_module(), "attack", "11.7"))
        mallory_buf = mallory.cudaMalloc(256)
        for shift in range(2, 56, 4):  # word-aligned offsets
            mallory.cudaLaunchKernel(
                handles["writer"], (1, 1, 1), (1, 1, 1),
                [mallory_buf, 1 << shift, 0xEE])
        after = device.memory.read(alice_record.base,
                                   alice_record.size)
        assert before == after


@pytest.mark.parametrize("mode", MODES)
class TestTransferAttacks:
    def test_hostile_h2d(self, mode):
        _, _, alice, mallory = guardian_world(mode)
        alice_buf = alice.cudaMalloc(128)
        with pytest.raises(BoundsViolation):
            mallory.cudaMemcpyH2D(alice_buf, b"\x00" * 128)

    def test_hostile_d2h(self, mode):
        _, _, alice, mallory = guardian_world(mode)
        alice_buf = alice.cudaMalloc(128)
        alice.cudaMemcpyH2D(alice_buf, b"secret-bytes" + b"\x00" * 116)
        with pytest.raises(BoundsViolation):
            mallory.cudaMemcpyD2H(alice_buf, 128)

    def test_hostile_free(self, mode):
        _, _, alice, mallory = guardian_world(mode)
        alice_buf = alice.cudaMalloc(128)
        with pytest.raises(AllocationError):
            mallory.cudaFree(alice_buf)

    def test_hostile_memset(self, mode):
        _, _, alice, mallory = guardian_world(mode)
        alice_buf = alice.cudaMalloc(128)
        alice.cudaMemcpyH2D(alice_buf, b"\x11" * 128)
        with pytest.raises(BoundsViolation):
            mallory.cudaMemset(alice_buf, 0, 128)
        assert alice.cudaMemcpyD2H(alice_buf, 128) == b"\x11" * 128


class TestVictimCorrectness:
    """Protection must not perturb the victim: Alice's computation
    runs correctly while under attack."""

    def test_alice_computes_correctly_during_attack(self):
        from tests.conftest import saxpy_module

        device, server, alice, mallory = guardian_world(
            FencingMode.BITWISE)
        saxpy_handles = alice.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        xs = np.arange(64, dtype=np.float32)
        x_buf = upload_array(alice, xs)
        y_buf = alice.cudaMalloc(256)
        alice.cudaMemset(y_buf, 0, 256)

        attack_handles = mallory.registerFatBinary(
            build_fatbin(attack_module(), "attack", "11.7"))
        mallory_buf = mallory.cudaMalloc(256)

        for evil in (x_buf - mallory_buf, y_buf - mallory_buf, 1 << 30):
            mallory.cudaLaunchKernel(
                attack_handles["writer"], (1, 1, 1), (1, 1, 1),
                [mallory_buf, evil, 0xFFFFFFFF])
        alice.cudaLaunchKernel(saxpy_handles["saxpy"],
                               (1, 1, 1), (64, 1, 1),
                               [y_buf, x_buf, 3.0, 64])
        assert np.allclose(download_array(alice, y_buf, 64), 3.0 * xs)


class TestUnprotectedContrast:
    """Without Guardian (MPS-style sharing) the same attack succeeds —
    demonstrating the problem is real in our substrate (Fig. 2)."""

    def test_mps_attack_succeeds(self):
        from repro.runtime.api import CudaRuntime
        from repro.runtime.interpose import LIBCUDA, DynamicLoader
        from repro.sharing.mps import MPSClient, MPSServer

        device = Device(QUADRO_RTX_A4000)
        mps = MPSServer(device)

        def tenant(app_id):
            loader = DynamicLoader()
            loader.register(LIBCUDA, MPSClient(mps, app_id))
            return CudaRuntime(loader)

        alice, mallory = tenant("alice"), tenant("mallory")
        secret = np.full(16, 7.0, dtype=np.float32)
        alice_buf = upload_array(alice, secret)
        handles = mallory.registerFatBinary(
            build_fatbin(attack_module(), "attack", "11.7"))
        mallory_buf = mallory.cudaMalloc(64)
        mallory.cudaLaunchKernel(
            handles["writer"], (1, 1, 1), (1, 1, 1),
            [mallory_buf, alice_buf - mallory_buf, 0xBAD])
        corrupted = download_array(alice, alice_buf, 16)
        assert not np.array_equal(corrupted, secret)
