"""Fuzzed transparency: patching must never change a legal kernel.

For randomly generated (but valid, in-partition) kernels, the
sandboxed variant must produce byte-identical memory effects and the
same per-thread load/store counts as the native kernel — under every
fencing mode. This is the other half of the security argument: zero
false positives.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.masks import division_magic, partition_mask
from repro.core.patcher import PTXPatcher
from repro.core.policy import FencingMode
from repro.gpu.executor import KernelExecutor, compile_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.specs import QUADRO_RTX_A4000

from tests.ptx.test_roundtrip import random_straightline_kernel

SPEC = QUADRO_RTX_A4000
BASE = 0x7F_A000_0000_00
PART = 1 << 20

_EXTRA = {
    FencingMode.BITWISE: [BASE, partition_mask(PART)],
    FencingMode.MODULO: [BASE, PART, division_magic(PART)],
    FencingMode.CHECKING: [BASE, BASE + PART],
}


def _run(kernel, params):
    memory = GlobalMemory(1 << 22)
    executor = KernelExecutor(SPEC, memory)
    compiled = compile_kernel(kernel, SPEC)
    result = executor.launch(compiled, (1, 1, 1), (32, 1, 1), params)
    return memory.read(BASE, 4096), result


class TestTransparencyFuzz:
    @given(
        module=random_straightline_kernel(),
        mode=st.sampled_from(list(_EXTRA)),
    )
    @settings(max_examples=40, deadline=None)
    def test_patched_equals_native_for_legal_kernels(self, module, mode):
        kernel = module.kernels["rk"]
        native_memory, native = _run(kernel, [BASE, 32, 1.5])
        patched, report = PTXPatcher(mode).patch_kernel(kernel)
        patched_memory, sandboxed = _run(
            patched, [BASE, 32, 1.5] + _EXTRA[mode])
        assert native_memory == patched_memory
        assert native.loads + report.loads_instrumented >= native.loads
        assert sandboxed.stores == native.stores
        # Instrumentation always costs cycles, never changes results.
        if report.sites:
            assert (sandboxed.total_warp_cycles
                    > native.total_warp_cycles)

    @given(module=random_straightline_kernel())
    @settings(max_examples=20, deadline=None)
    def test_double_patching_is_still_contained(self, module):
        """Patching an already-patched kernel (operator error) must
        not break containment or validity."""
        from repro.ptx.builder import build_module
        from repro.ptx.validator import validate_module

        kernel = module.kernels["rk"]
        once, _ = PTXPatcher(FencingMode.BITWISE).patch_kernel(kernel)
        # The reserved register prefix makes double patching an error
        # the server would catch — never silent corruption.
        from repro.errors import PatcherError

        with pytest.raises(PatcherError, match="reserved"):
            PTXPatcher(FencingMode.BITWISE).patch_kernel(once)
        validate_module(build_module([once]))
