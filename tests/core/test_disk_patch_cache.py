"""DiskPatchCache: the content-addressed on-disk patch store.

Entries must be written atomically (a crashed writer never leaves a
half-entry a later reader could trust), keyed by content + fencing mode
+ format version, and any unreadable / foreign / stale file must read
as a miss — the worst a corrupt cache can do is cost one re-patch.
"""

from __future__ import annotations

import json
import os

from repro.core.patcher import (
    DISK_FORMAT_VERSION,
    DiskPatchCache,
    PatchReport,
)
from repro.core.policy import FencingMode

PTX = ".visible .entry saxpy() { ret; }"
PATCHED = ".visible .entry saxpy() { /* fenced */ ret; }"


def report() -> PatchReport:
    return PatchReport(kernel="saxpy", mode=FencingMode.BITWISE,
                       loads_instrumented=3, stores_instrumented=2,
                       extra_params=2)


def entry_path(cache: DiskPatchCache) -> str:
    return cache._path_for(cache.key_for(PTX, FencingMode.BITWISE))


class TestDiskPatchCache:
    def test_put_then_memory_hit(self, tmp_path):
        cache = DiskPatchCache(str(tmp_path))
        cache.put(PTX, FencingMode.BITWISE, PATCHED, [report()])
        assert cache.disk_writes == 1
        cached, tier = cache.get_with_source(PTX, FencingMode.BITWISE)
        assert tier == "memory"  # the LRU answers before disk
        assert cached[0] == PATCHED

    def test_filename_is_content_addressed_and_versioned(self, tmp_path):
        cache = DiskPatchCache(str(tmp_path))
        cache.put(PTX, FencingMode.BITWISE, PATCHED, [report()])
        filename = os.path.basename(entry_path(cache))
        digest, _ = cache.key_for(PTX, FencingMode.BITWISE)
        assert filename == f"{digest}-bitwise-v{DISK_FORMAT_VERSION}.json"
        # Atomic write: the entry is the only file (no temp leftovers).
        assert os.listdir(tmp_path) == [filename]

    def test_fresh_instance_hits_disk_and_promotes(self, tmp_path):
        DiskPatchCache(str(tmp_path)).put(
            PTX, FencingMode.BITWISE, PATCHED, [report()])
        fresh = DiskPatchCache(str(tmp_path))
        cached, tier = fresh.get_with_source(PTX, FencingMode.BITWISE)
        assert tier == "disk"
        assert fresh.disk_hits == 1
        patched_text, reports = cached
        assert patched_text == PATCHED
        assert len(reports) == 1
        assert reports[0] == report()  # mode round-trips the enum
        # The disk hit promoted the entry into the memory LRU.
        _, tier = fresh.get_with_source(PTX, FencingMode.BITWISE)
        assert tier == "memory"

    def test_mode_is_part_of_the_key(self, tmp_path):
        cache = DiskPatchCache(str(tmp_path))
        cache.put(PTX, FencingMode.BITWISE, PATCHED, [report()])
        cached, tier = cache.get_with_source(PTX, FencingMode.MODULO)
        assert cached is None and tier is None
        assert cache.disk_misses == 1

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = DiskPatchCache(str(tmp_path))
        cache.put(PTX, FencingMode.BITWISE, PATCHED, [report()])
        with open(entry_path(cache), "w") as handle:
            handle.write("{ not json")
        fresh = DiskPatchCache(str(tmp_path))
        cached, tier = fresh.get_with_source(PTX, FencingMode.BITWISE)
        assert cached is None and tier is None
        assert fresh.disk_misses == 1

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = DiskPatchCache(str(tmp_path))
        cache.put(PTX, FencingMode.BITWISE, PATCHED, [report()])
        path = entry_path(cache)
        payload = json.loads(open(path).read())
        payload["version"] = DISK_FORMAT_VERSION + 1
        with open(path, "w") as handle:
            json.dump(payload, handle)
        fresh = DiskPatchCache(str(tmp_path))
        cached, tier = fresh.get_with_source(PTX, FencingMode.BITWISE)
        assert cached is None and tier is None

    def test_get_without_source_still_reads_disk(self, tmp_path):
        DiskPatchCache(str(tmp_path)).put(
            PTX, FencingMode.BITWISE, PATCHED, [report()])
        fresh = DiskPatchCache(str(tmp_path))
        cached = fresh.get(PTX, FencingMode.BITWISE)
        assert cached is not None and cached[0] == PATCHED

    def test_directory_is_created_and_expanded(self, tmp_path):
        nested = tmp_path / "a" / "b"
        cache = DiskPatchCache(str(nested))
        cache.put(PTX, FencingMode.BITWISE, PATCHED, [report()])
        assert nested.is_dir()
        assert len(os.listdir(nested)) == 1
