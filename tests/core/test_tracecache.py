"""Trace-specialization lifecycle, invalidation lattice, and the
specialized == interpreted bit-identity pin.

The trace engine is pure opt-in performance modelling: compiling a
tenant's steady-state block must never change what the driver executes
or what the fence rejects. These tests pin the compile threshold, the
fused-replay cycle accounting, every edge of the invalidation lattice
(epoch bump, incarnation change, config swap, shape deviation,
migration), and — via hypothesis — that a traced server's functional
outputs are byte-for-byte the interpreted server's outputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import FencingMode
from repro.core.server import GuardianServer, ServerConfig
from repro.driver.fatbin import build_fatbin
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000

from tests.conftest import make_guardian_tenant, saxpy_module

PAYLOAD = np.arange(16, dtype=np.float32).tobytes()


def traced_server(**overrides) -> GuardianServer:
    return GuardianServer(
        Device(QUADRO_RTX_A4000), FencingMode.BITWISE,
        config=ServerConfig.traced(**overrides),
    )


def deploy(server, app_id="alice"):
    """Attach + register the saxpy library + one working buffer."""
    server.attach(app_id, 1 << 20)
    handles, _ = server.register_fatbin(
        app_id, build_fatbin(saxpy_module(), "libsaxpy", "11.7"))
    buf, _ = server.malloc(app_id, 4096)
    return handles["saxpy"], buf


def run_block(server, app_id, handle, buf, payload=PAYLOAD):
    """One sync-delimited steady-state block: h2d, h2d, launch, sync."""
    server.memcpy_h2d(app_id, buf, payload)
    server.memcpy_h2d(app_id, buf + 2048, payload)
    server.launch_kernel(app_id, handle, (1, 1, 1), (16, 1, 1),
                         [buf, buf + 2048, 2.0, 16])
    server.synchronize(app_id)


def heat(server, app_id, handle, buf):
    """Run exactly enough identical blocks to compile the trace."""
    for _ in range(server.config.trace_hot_threshold):
        run_block(server, app_id, handle, buf)


class TestCompileAndReplay:
    def test_compiles_at_hot_threshold(self):
        server = traced_server()
        handle, buf = deploy(server)
        run_block(server, "alice", handle, buf)
        assert server.stats.traces_compiled == 0
        assert not server.trace_engine.has_trace("alice")
        run_block(server, "alice", handle, buf)
        assert server.stats.traces_compiled == 1
        assert server.trace_engine.has_trace("alice")
        # Compilation alone replays nothing.
        assert server.stats.trace_replays == 0

    def test_replays_after_compile(self):
        server = traced_server()
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)
        launches_before = server.stats.launches
        run_block(server, "alice", handle, buf)
        assert server.stats.trace_replays == 1
        assert server.stats.trace_replay_ops == 3
        # Replay still performs the launch — it is not skipped.
        assert server.stats.launches == launches_before + 1

    def test_replay_cycle_accounting(self):
        """Returned cycles == stats delta on every replayed op, and the
        absolute figures match the cost model: the block entry pays
        guards + one fused submit + the vectorized range check, then
        each op pays ``trace_replay_op``."""
        server = traced_server()
        costs = server.costs
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)

        def charged(operation):
            before = server.stats.cycles
            _, cycles = operation()
            assert cycles == server.stats.cycles - before
            return cycles

        # Block entry: 2 ranges (the two h2d destinations).
        entry = (costs.trace_guard + costs.trace_submit
                 + costs.vector_check_base
                 + 2 * costs.vector_check_per_range)
        first = charged(lambda: server.memcpy_h2d("alice", buf, PAYLOAD))
        assert first == entry + costs.trace_replay_op
        second = charged(
            lambda: server.memcpy_h2d("alice", buf + 2048, PAYLOAD))
        assert second == costs.trace_replay_op
        third = charged(lambda: server.launch_kernel(
            "alice", handle, (1, 1, 1), (16, 1, 1),
            [buf, buf + 2048, 2.0, 16]))
        assert third == costs.trace_replay_op
        server.synchronize("alice")
        assert server.stats.trace_replays == 1
        assert server.stats.trace_ranges_prechecked == 2

    def test_flat_checks_without_vectorized_bounds(self):
        """With ``enable_vectorized_bounds`` off each replayed transfer
        pays (and evaluates) the flat per-range check instead of the
        prologue's one-shot numpy sweep."""
        server = traced_server(enable_vectorized_bounds=False)
        costs = server.costs
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)
        before = server.stats.cycles
        _, cycles = server.memcpy_h2d("alice", buf, PAYLOAD)
        assert cycles == server.stats.cycles - before
        assert cycles == (costs.trace_guard + costs.trace_submit
                          + costs.trace_replay_op + costs.transfer_check)
        assert server.stats.trace_ranges_prechecked == 0

    def test_stock_config_never_traces(self):
        server = GuardianServer(Device(QUADRO_RTX_A4000),
                                FencingMode.BITWISE)
        assert server.trace_engine is None
        handle, buf = deploy(server)
        for _ in range(4):
            run_block(server, "alice", handle, buf)
        assert server.stats.traces_compiled == 0
        assert server.stats.trace_eligible_ops == 0

    def test_alternating_blocks_never_stabilize(self):
        server = traced_server()
        handle, buf = deploy(server)
        for offset in (0, 512, 0, 512, 0, 512):
            server.memcpy_h2d("alice", buf + offset, PAYLOAD)
            server.synchronize("alice")
        assert server.stats.traces_compiled == 0


class TestInvalidationLattice:
    def test_grow_partition_invalidates_eagerly(self):
        server = traced_server()
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)
        assert server.trace_engine.has_trace("alice")
        server.grow_partition("alice", 1 << 21)
        assert not server.trace_engine.has_trace("alice")
        assert server.stats.trace_invalidations == 1
        # The loop re-heats under the new bounds record and replays again.
        heat(server, "alice", handle, buf)
        run_block(server, "alice", handle, buf)
        assert server.stats.traces_compiled == 2
        assert server.stats.trace_replays == 1

    def test_quarantine_forgets_and_reattach_starts_cold(self):
        server = traced_server()
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)
        server.quarantine("alice", reason="test")
        assert not server.trace_engine.has_trace("alice")
        assert server.stats.trace_invalidations == 1
        # The next incarnation earns its trace from scratch: the first
        # block only records, the second compiles, the third replays.
        handle, buf = deploy(server)
        run_block(server, "alice", handle, buf)
        assert server.stats.trace_replays == 0
        run_block(server, "alice", handle, buf)
        assert server.stats.traces_compiled == 2
        run_block(server, "alice", handle, buf)
        assert server.stats.trace_replays == 1

    def test_detach_forgets(self):
        server = traced_server()
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)
        server.detach("alice")
        assert not server.trace_engine.has_trace("alice")
        assert server.stats.trace_invalidations == 1

    def test_config_swap_fails_guard_then_recompiles(self):
        """Live reconfiguration swaps the frozen config object; the
        identity guard drops the trace at the next block entry, the
        block runs interpreted, and the loop recompiles under the new
        config."""
        server = traced_server()
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)
        server.config = ServerConfig.traced()
        run_block(server, "alice", handle, buf)
        assert server.stats.trace_guard_failures == 1
        assert server.stats.trace_invalidations == 1
        assert server.stats.trace_replays == 0
        # That fallback block already counts toward re-stabilization.
        run_block(server, "alice", handle, buf)
        assert server.stats.traces_compiled == 2
        run_block(server, "alice", handle, buf)
        assert server.stats.trace_replays == 1

    def test_mid_block_deviation_drops_trace(self):
        server = traced_server()
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)
        # First op matches and replays; the second changes shape.
        server.memcpy_h2d("alice", buf, PAYLOAD)
        server.memset("alice", buf + 2048, 0, 64)
        server.launch_kernel("alice", handle, (1, 1, 1), (16, 1, 1),
                             [buf, buf + 2048, 2.0, 16])
        server.synchronize("alice")
        assert server.stats.trace_invalidations == 1
        assert server.stats.trace_replays == 0
        assert not server.trace_engine.has_trace("alice")

    def test_shorter_block_drops_trace(self):
        server = traced_server()
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)
        server.memcpy_h2d("alice", buf, PAYLOAD)
        server.synchronize("alice")  # block ended two ops early
        assert server.stats.trace_invalidations == 1
        assert server.stats.trace_replays == 0

    def test_migration_restore_starts_cold(self):
        """Satellite: a restored tenant's traces are cold at the
        destination — the source's compiled block never moves with the
        snapshot, so stale-epoch replay after a migration is impossible
        by construction."""
        source = traced_server()
        handle, buf = deploy(source)
        heat(source, "alice", handle, buf)
        assert source.trace_engine.has_trace("alice")
        snapshot = source.snapshot_tenant("alice")

        target = traced_server()
        target.restore_tenant(snapshot)
        assert not target.trace_engine.has_trace("alice")
        # The destination re-earns the trace under its own bounds
        # record; the tenant's handles/buffer survive the restore.
        run_block(target, "alice", handle, buf)
        assert target.stats.trace_replays == 0
        run_block(target, "alice", handle, buf)
        assert target.stats.traces_compiled == 1
        run_block(target, "alice", handle, buf)
        assert target.stats.trace_replays == 1


class TestMarshalShadowCursor:
    """The client-side mirror: while the server holds a compiled trace
    the IPC channel marshals matching calls at the discounted rate."""

    def _stack(self):
        server = traced_server()
        client, _ = make_guardian_tenant(server, "alice")
        handles = client.register_fatbin(
            build_fatbin(saxpy_module(), "libsaxpy", "11.7"))
        buf = client.malloc(4096)
        return server, client, handles["saxpy"], buf

    def _block(self, client, handle, buf):
        client.memcpy_h2d(buf, PAYLOAD)
        client.memcpy_h2d(buf + 2048, PAYLOAD)
        client.launch_kernel(handle, (1, 1, 1), (16, 1, 1),
                             [buf, buf + 2048, 2.0, 16])
        client.synchronize()

    def test_cached_marshalling_only_after_compile(self):
        server, client, handle, buf = self._stack()
        self._block(client, handle, buf)
        self._block(client, handle, buf)
        assert server.stats.traces_compiled == 1
        assert client.channel.stats.marshal_cached_calls == 0
        self._block(client, handle, buf)
        assert client.channel.stats.marshal_cached_calls == 3

    def test_deviation_parks_cursor_until_sync(self):
        server, client, handle, buf = self._stack()
        for _ in range(3):
            self._block(client, handle, buf)
        assert client.channel.stats.marshal_cached_calls == 3
        # First call matches (cached); the memset deviates, parking the
        # cursor, so the trailing launch pays full marshalling even
        # though it matches a later slot.
        client.memcpy_h2d(buf, PAYLOAD)
        client.memset(buf + 2048, 0, 64)
        client.launch_kernel(handle, (1, 1, 1), (16, 1, 1),
                             [buf, buf + 2048, 2.0, 16])
        client.synchronize()
        assert client.channel.stats.marshal_cached_calls == 4
        # The server dropped the trace — no discount until it recompiles.
        self._block(client, handle, buf)
        assert client.channel.stats.marshal_cached_calls == 4

    def test_trace_engine_exposed_to_clients(self):
        server, client, _, _ = self._stack()
        assert client.trace_engine is server.trace_engine


class TestBitIdentity:
    """Hypothesis pin: specialized execution is byte-for-byte the
    interpreted execution, for any payload sequence — the payload is
    staged live at every replay, never baked into the trace."""

    @settings(max_examples=20, deadline=None)
    @given(st.lists(
        st.lists(st.floats(min_value=-1e6, max_value=1e6, width=32),
                 min_size=16, max_size=16),
        min_size=3, max_size=6,
    ))
    def test_traced_outputs_match_interpreted(self, blocks):
        payloads = [np.asarray(values, dtype=np.float32).tobytes()
                    for values in blocks]
        traced = traced_server()
        stock = GuardianServer(Device(QUADRO_RTX_A4000),
                               FencingMode.BITWISE)
        arms = [(traced, *deploy(traced)), (stock, *deploy(stock))]
        outputs = ([], [])
        for payload in payloads:
            for index, (server, handle, buf) in enumerate(arms):
                run_block(server, "alice", handle, buf, payload=payload)
                data, _ = server.memcpy_d2h("alice", buf, 64)
                outputs[index].append(data)
        assert outputs[0] == outputs[1]
        # The traced arm really specialized (threshold is 2 blocks).
        assert traced.stats.traces_compiled == 1
        assert traced.stats.trace_replays == len(payloads) - 2
        assert stock.stats.traces_compiled == 0

class TestElasticInvalidation:
    """Elastic mutations (DESIGN.md §14) drop traces cleanly: shrink
    invalidates eagerly like grow, compaction and swap funnel through
    the lifecycle forget — a specialized block can never replay
    against a stale base, mask, or stream."""

    @staticmethod
    def _elastic_traced(**overrides):
        return traced_server(enable_shrink=True, enable_compaction=True,
                             enable_oversubscription=True, **overrides)

    def test_shrink_invalidates_eagerly_then_reheats(self):
        server = self._elastic_traced()
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)
        assert server.trace_engine.has_trace("alice")
        new_size, _ = server.shrink_partition("alice")
        assert new_size < 1 << 20
        assert not server.trace_engine.has_trace("alice")
        assert server.stats.trace_invalidations == 1
        # Re-heats under the narrower mask and replays again.
        heat(server, "alice", handle, buf)
        run_block(server, "alice", handle, buf)
        assert server.stats.traces_compiled == 2
        assert server.stats.trace_replays == 1

    def test_noop_shrink_keeps_the_trace(self):
        server = self._elastic_traced(min_partition_bytes=1 << 20)
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)
        new_size, _ = server.shrink_partition("alice")
        assert new_size == 1 << 20  # floored: nothing happened
        assert server.trace_engine.has_trace("alice")
        assert server.stats.trace_invalidations == 0

    def test_compaction_forgets_via_lifecycle(self):
        server = self._elastic_traced()
        server.attach("pad", 1 << 20)
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)
        server.detach("pad")  # open a lower hole
        assert server.elastic.compact("alice") is not None
        assert not server.trace_engine.has_trace("alice")

    def test_swap_out_forgets_and_swap_in_starts_cold(self):
        server = self._elastic_traced()
        handle, buf = deploy(server)
        heat(server, "alice", handle, buf)
        server.elastic.swap_out("alice")
        assert not server.trace_engine.has_trace("alice")
        server.elastic.ensure_resident("alice")
        # Cold start: record, compile, replay — from scratch.
        run_block(server, "alice", handle, buf)
        assert server.stats.trace_replays == 0
        run_block(server, "alice", handle, buf)
        assert server.stats.traces_compiled == 2
        run_block(server, "alice", handle, buf)
        assert server.stats.trace_replays == 1
