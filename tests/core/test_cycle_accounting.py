"""Regression tests pinning the server's cycle accounting.

Every handler must charge each cost to ``stats.cycles`` exactly once,
and the cycles it *returns* (what the IPC layer puts on the client's
critical path) must equal the ``stats.cycles`` delta it caused. These
tests pin both the invariant and the absolute per-op totals, so a
refactor that double-charges — or silently changes a Table 5 input —
fails loudly.
"""

import pytest

from repro.errors import BoundsViolation
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer, ServerConfig
from repro.driver.fatbin import build_fatbin
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000

from tests.conftest import saxpy_module


@pytest.fixture
def device():
    return Device(QUADRO_RTX_A4000)


@pytest.fixture
def server(device):
    return GuardianServer(device, FencingMode.BITWISE)


@pytest.fixture
def tenant(server):
    server.attach("alice", 1 << 20)
    buf, _ = server.malloc("alice", 4096)
    return buf


def charged(server, operation):
    """Run ``operation``, assert returned cycles == stats delta, and
    return the delta."""
    before = server.stats.cycles
    _, cycles = operation()
    delta = server.stats.cycles - before
    assert cycles == delta
    return delta


class TestReturnedEqualsCharged:
    def test_h2d(self, server, tenant):
        delta = charged(server, lambda: server.memcpy_h2d(
            "alice", tenant, b"x" * 256))
        assert delta == (server.costs.transfer_check
                         + server.costs.driver.memcpy)

    def test_d2h(self, server, tenant):
        server.memcpy_h2d("alice", tenant, b"x" * 256)
        delta = charged(server, lambda: server.memcpy_d2h(
            "alice", tenant, 256))
        assert delta == (server.costs.transfer_check
                         + server.costs.driver.memcpy)

    def test_d2d(self, server, tenant):
        delta = charged(server, lambda: server.memcpy_d2d(
            "alice", tenant, tenant + 512, 256))
        assert delta == (2 * server.costs.transfer_check
                         + server.costs.driver.memcpy)

    def test_memset(self, server, tenant):
        delta = charged(server, lambda: server.memset(
            "alice", tenant, 0, 256))
        assert delta == (server.costs.transfer_check
                         + server.costs.driver.memcpy)

    def test_malloc_and_free(self, server, tenant):
        before = server.stats.cycles
        address, cycles = server.malloc("alice", 512)
        assert cycles == server.stats.cycles - before
        assert cycles == server.costs.malloc + server.costs.driver.malloc
        delta = charged(server, lambda: server.free("alice", address))
        assert delta == server.costs.free + server.costs.driver.free

    def test_launch(self, server, tenant):
        handles, _ = server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        delta = charged(server, lambda: server.launch_kernel(
            "alice", handles["saxpy"], (1, 1, 1), (32, 1, 1),
            [tenant, tenant, 2.0, 0]))
        # The paper's Table 5 breakdown, pinned to the cycle.
        assert delta == 557 + 400 + 9_000
        assert delta == (server.costs.lookup + server.costs.augment
                         + server.costs.launch_syscall)


class TestViolationPathCharging:
    """A fenced transfer is charged for the checks it ran — once."""

    def test_h2d_violation_charges_one_check(self, server, tenant):
        record = server.allocator.bounds.lookup("alice")
        before = server.stats.cycles
        with pytest.raises(BoundsViolation):
            server.memcpy_h2d("alice", record.end, b"x" * 16)
        assert server.stats.cycles - before == server.costs.transfer_check

    def test_d2d_second_check_violation_charges_two(self, server, tenant):
        """Source passes, destination is fenced: both checks ran."""
        record = server.allocator.bounds.lookup("alice")
        before = server.stats.cycles
        with pytest.raises(BoundsViolation):
            server.memcpy_d2d("alice", record.end, tenant, 256)
        assert server.stats.cycles - before == (
            2 * server.costs.transfer_check
        )

    def test_d2d_first_check_violation_charges_one(self, server, tenant):
        record = server.allocator.bounds.lookup("alice")
        before = server.stats.cycles
        with pytest.raises(BoundsViolation):
            server.memcpy_d2d("alice", tenant, record.end, 256)
        assert server.stats.cycles - before == server.costs.transfer_check


class TestDefaultConfigMatchesPaper:
    """With the stock ServerConfig the hot-path machinery is inert:
    deployment and launch costs are exactly the seed model's."""

    def test_register_fatbin_charges_nothing(self, server, tenant):
        before = server.stats.cycles
        _, cycles = server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        assert cycles == server.costs.dispatch
        assert server.stats.cycles == before  # dispatch is not charged

    def test_charge_patch_cycles_accounts_offline_work(self, device):
        config = ServerConfig(charge_patch_cycles=True)
        server = GuardianServer(device, FencingMode.BITWISE,
                                config=config)
        server.attach("alice", 1 << 20)
        before = server.stats.cycles
        _, cycles = server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        expected = server.costs.extract + server.costs.patch_module
        assert server.stats.cycles - before == expected
        assert cycles == server.costs.dispatch + expected
