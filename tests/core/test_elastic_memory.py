"""Elastic memory engine: shrink, compact, oversubscribe (DESIGN.md §14)."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.elastic import ElasticClient
from repro.core.policy import (
    FencingMode,
    NeverDefragPolicy,
    ThresholdDefragPolicy,
    defrag_policy,
)
from repro.core.server import GuardianServer, ServerConfig
from repro.driver.fatbin import build_fatbin
from repro.errors import GuardianError, PartitionError
from repro.gpu.device import Device
from repro.gpu.specs import MIB, QUADRO_RTX_A4000
from repro.ptx.builder import build_module
from repro.ptx.emitter import emit_module

from tests.conftest import saxpy_kernel

#: Small carve space (16 MiB usable after the driver's own reserve)
#: so a handful of tenants exhausts it.
SMALL = dataclasses.replace(QUADRO_RTX_A4000,
                            global_memory_bytes=17 * MIB)


def elastic_server(**overrides) -> GuardianServer:
    return GuardianServer(Device(SMALL),
                          config=ServerConfig.elastic(**overrides))


def saxpy_ptx() -> str:
    return emit_module(build_module([saxpy_kernel()]))


def attach(server, app_id, size=1 << 20) -> ElasticClient:
    client = ElasticClient(server, app_id, size)
    if server.elastic is not None:
        server.elastic.bind_client(app_id, client)
    return client


# --------------------------------------------------------------------------
# Knob gating: the stock server carries no engine at all
# --------------------------------------------------------------------------


class TestKnobsDefaultOff:
    def test_stock_server_has_no_engine(self):
        server = GuardianServer(Device(SMALL))
        assert server.elastic is None

    def test_all_elastic_counters_zero_on_stock(self):
        server = GuardianServer(Device(SMALL))
        server.attach("a", 1 << 20)
        server.malloc("a", 4096)
        server.detach("a")
        stats = server.stats
        assert (stats.partitions_shrunk, stats.tenants_compacted,
                stats.swaps_out, stats.swaps_in) == (0, 0, 0, 0)
        assert (stats.bytes_reclaimed, stats.bytes_compacted,
                stats.bytes_swapped_out, stats.bytes_swapped_in) \
            == (0, 0, 0, 0)

    def test_shrink_handler_gated(self):
        server = GuardianServer(Device(SMALL))
        server.attach("a", 1 << 20)
        with pytest.raises(GuardianError, match="enable_shrink"):
            server.shrink_partition("a")

    def test_single_knob_constructs_engine(self):
        server = GuardianServer(
            Device(SMALL), config=ServerConfig(enable_shrink=True))
        assert server.elastic is not None
        assert server.elastic.shrink_enabled
        assert not server.elastic.compaction_enabled
        with pytest.raises(GuardianError, match="enable_compaction"):
            server.elastic.compact("nobody")

    def test_elastic_preset_enables_all_three(self):
        config = ServerConfig.elastic()
        assert config.enable_shrink
        assert config.enable_compaction
        assert config.enable_oversubscription


# --------------------------------------------------------------------------
# Shrink: inverse of grow — mask narrows, base unchanged, epoch bumps
# --------------------------------------------------------------------------


class TestShrink:
    def test_shrinks_to_high_water_buddy_floor(self):
        server = elastic_server()
        client = attach(server, "a", 4 << 20)
        client.malloc(300 << 10)  # high water ~300 KiB -> floor 512 KiB
        new_size = client.shrink_partition()
        assert new_size == 512 << 10
        assert server.stats.partitions_shrunk == 1
        assert server.stats.bytes_reclaimed == (4 << 20) - (512 << 10)

    def test_base_unchanged_mask_narrows_epoch_bumps(self):
        server = elastic_server()
        client = attach(server, "a", 4 << 20)
        client.malloc(4096)
        before = server.allocator.bounds.read("a")
        epoch = server.allocator.bounds.epoch("a")
        client.shrink_partition()
        after = server.allocator.bounds.read("a")
        assert after.base == before.base
        assert after.size < before.size
        assert after.mask < before.mask
        # remove + register, exactly like grow: +2.
        assert server.allocator.bounds.epoch("a") == epoch + 2

    def test_data_survives_and_fence_uses_new_mask(self):
        server = elastic_server()
        client = attach(server, "a", 4 << 20)
        handles = client.load_module_ptx(saxpy_ptx())
        buf = client.malloc(512)
        client.memcpy_h2d(buf + 256,
                          np.ones(32, dtype=np.float32).tobytes())
        client.shrink_partition()
        client.launch_kernel(handles["saxpy"], (1, 1, 1), (32, 1, 1),
                             [buf, buf + 256, 4.0, 32])
        client.synchronize()
        out = np.frombuffer(client.memcpy_d2h(buf, 128), np.float32)
        assert np.allclose(out, 4.0)

    def test_released_half_is_carveable(self):
        server = elastic_server()
        total_free = server.allocator.bytes_unpartitioned
        client = attach(server, "a", 8 << 20)
        client.malloc(4096)
        client.shrink_partition()
        assert server.allocator.bytes_unpartitioned == \
            total_free - server.allocator.partition("a").size

    def test_high_water_in_upper_half_refuses(self):
        server = elastic_server()
        client = attach(server, "a", 4 << 20)
        # Fill past the halfway mark: no buddy half is releasable.
        client.malloc(3 << 20)
        epoch = server.allocator.bounds.epoch("a")
        assert client.shrink_partition() == 4 << 20
        assert server.stats.partitions_shrunk == 0
        assert server.allocator.bounds.epoch("a") == epoch

    def test_noop_shrink_charges_nothing(self):
        server = elastic_server()
        server.attach("a", 1 << 20)
        server.malloc("a", 700 << 10)
        before = server.stats.cycles
        size, charged = server.elastic.shrink("a")
        assert charged == 0.0
        assert server.stats.cycles == before

    def test_min_partition_bytes_floor(self):
        server = elastic_server(min_partition_bytes=64 << 10)
        client = attach(server, "a", 1 << 20)
        client.malloc(256)
        assert client.shrink_partition() == 64 << 10

    def test_grow_then_shrink_round_trips(self):
        server = elastic_server()
        client = attach(server, "a", 1 << 20)
        client.malloc(4096)
        record = server.allocator.bounds.read("a")
        client.grow_partition(4 << 20)
        shrunk = client.shrink_partition()
        after = server.allocator.bounds.read("a")
        assert shrunk < 1 << 20  # heap is near-empty: below the original
        assert after.base == record.base

    def test_sweep_is_deterministic_and_reports_reclaim(self):
        server = elastic_server()
        for name in ("c", "a", "b"):
            attach(server, name, 2 << 20).malloc(4096)
        reclaimed = server.elastic.shrink_sweep()
        assert reclaimed == 3 * ((2 << 20) - 4096)
        assert server.stats.partitions_shrunk == 3


# --------------------------------------------------------------------------
# Compaction: migration machinery intra-node, fence-relocated pointers
# --------------------------------------------------------------------------


class TestCompaction:
    def _fragmented(self, server):
        """pad(1M) | mover(1M) arrangement, then pad departs."""
        pad = attach(server, "pad", 1 << 20)
        mover = attach(server, "mover", 1 << 20)
        pad.close()
        return mover

    def test_moves_to_strictly_lower_base(self):
        server = elastic_server()
        mover = self._fragmented(server)
        old_base = server.allocator.partition("mover").base
        new_base = server.elastic.compact("mover")
        assert new_base is not None and new_base < old_base
        assert server.allocator.partition("mover").base == new_base
        assert server.stats.tenants_compacted == 1
        assert server.stats.bytes_compacted == 1 << 20

    def test_no_lower_placement_is_a_noop(self):
        server = elastic_server()
        attach(server, "solo", 1 << 20)
        before = server.stats.cycles
        assert server.elastic.compact("solo") is None
        assert server.stats.tenants_compacted == 0
        assert server.stats.cycles == before

    def test_virtual_pointers_and_kernels_survive(self):
        server = elastic_server()
        mover = self._fragmented(server)
        handles = mover.load_module_ptx(saxpy_ptx())
        buf = mover.malloc(512)
        mover.memcpy_h2d(buf + 256,
                         np.ones(32, dtype=np.float32).tobytes())
        assert server.elastic.compact("mover") is not None
        assert mover.delta != 0
        # Old virtual pointers, new physical base, same handles.
        mover.launch_kernel(handles["saxpy"], (1, 1, 1), (32, 1, 1),
                            [buf, buf + 256, 2.0, 32])
        mover.synchronize()
        out = np.frombuffer(mover.memcpy_d2h(buf, 128), np.float32)
        assert np.allclose(out, 2.0)  # y = a*x + y = 2*1 + 0

    def test_bounds_republished_at_new_base_fresh_epoch(self):
        server = elastic_server()
        mover = self._fragmented(server)
        old = server.allocator.bounds.read("mover")
        new_base = server.elastic.compact("mover")
        record = server.allocator.bounds.read("mover")
        assert record.base == new_base != old.base
        assert record.size == old.size

    def test_compaction_charges_pcie_copy(self):
        server = elastic_server()
        mover = self._fragmented(server)
        before = server.stats.cycles
        server.elastic.compact("mover")
        # At least the modelled PCIe pass over 1 MiB.
        assert server.stats.cycles - before >= \
            (1 << 20) * 3.0 / SMALL.pcie_bw_gbps

    def test_requires_bitwise_fencing(self):
        server = GuardianServer(
            Device(SMALL), FencingMode.CHECKING,
            config=ServerConfig.elastic())
        server.attach("a", 1 << 20)
        with pytest.raises(GuardianError, match="bitwise"):
            server.elastic.compact("a")

    def test_grow_refused_after_relocation(self):
        server = elastic_server()
        mover = self._fragmented(server)
        server.elastic.compact("mover")
        assert mover.delta != 0
        with pytest.raises(PartitionError, match="relocation"):
            mover.grow_partition(4 << 20)

    def test_shrink_fine_after_relocation(self):
        server = elastic_server()
        mover = self._fragmented(server)
        mover.malloc(4096)
        server.elastic.compact("mover")
        assert mover.delta != 0
        assert mover.shrink_partition() < 1 << 20

    def test_defrag_respects_never_policy(self):
        server = elastic_server(defrag_policy="never")
        self._fragmented(server)
        assert server.elastic.defrag(want_bytes=1 << 20) == []
        assert server.stats.tenants_compacted == 0

    def test_defrag_triggers_on_stranded_placement(self):
        """Free bytes could hold the newcomer but no single gap can:
        the want-bytes trigger authorises exactly this compaction."""
        server = elastic_server()
        clients = [attach(server, f"t{i}", 2 << 20) for i in range(8)]
        for client in clients[::2]:
            client.close()  # 4 holes of 2 MiB, interleaved
        assert not server.allocator.can_carve(8 << 20)
        assert server.allocator.bytes_unpartitioned >= 8 << 20
        moves = server.elastic.defrag(want_bytes=8 << 20)
        assert moves
        assert server.allocator.can_carve(8 << 20)

    def test_defrag_preserves_recency_and_binding(self):
        server = elastic_server()
        mover = self._fragmented(server)
        engine = server.elastic
        recency = engine._recency["mover"]
        engine.defrag(want_bytes=16 << 20)  # forced trigger
        assert engine._recency["mover"] == recency
        assert engine._clients["mover"] is mover


# --------------------------------------------------------------------------
# Oversubscription: swap-to-host, LRU victims, hard cap
# --------------------------------------------------------------------------


class TestOversubscription:
    def test_swap_round_trip_preserves_everything(self):
        server = elastic_server()
        client = attach(server, "a", 1 << 20)
        handles = client.load_module_ptx(saxpy_ptx())
        buf = client.malloc(512)
        client.memcpy_h2d(buf + 256,
                          np.ones(32, dtype=np.float32).tobytes())
        client.synchronize()
        assert server.elastic.swap_out("a") == 1 << 20
        assert server.elastic.is_swapped("a")
        assert "a" not in server.allocator.bounds
        # Another tenant takes the slot; the swap-in lands elsewhere.
        attach(server, "squatter", 1 << 20)
        assert server.elastic.ensure_resident("a") is not None
        client.launch_kernel(handles["saxpy"], (1, 1, 1), (32, 1, 1),
                             [buf, buf + 256, 2.0, 32])
        client.synchronize()
        out = np.frombuffer(client.memcpy_d2h(buf, 128), np.float32)
        assert np.allclose(out, 2.0)  # x survived the round trip
        assert server.stats.swaps_out == server.stats.swaps_in == 1

    def test_swap_out_scrubs_the_region(self):
        server = elastic_server()
        client = attach(server, "a", 1 << 20)
        buf = client.malloc(4096)
        client.memcpy_h2d(buf, b"\xab" * 4096)
        client.synchronize()
        base = server.allocator.partition("a").base
        server.elastic.swap_out("a")
        assert server.device.memory.read(base, 4096) == b"\x00" * 4096
        assert server.stats.bytes_scrubbed >= 1 << 20

    def test_swap_charges_pcie_both_ways(self):
        server = elastic_server()
        attach(server, "a", 1 << 20)
        pcie = (1 << 20) * 3.0 / SMALL.pcie_bw_gbps
        before = server.stats.cycles
        server.elastic.swap_out("a")
        assert server.stats.cycles - before >= pcie
        before = server.stats.cycles
        server.elastic.ensure_resident("a")
        assert server.stats.cycles - before >= pcie

    def test_ensure_resident_noop_when_resident(self):
        server = elastic_server()
        attach(server, "a", 1 << 20)
        before = server.stats.cycles
        assert server.elastic.ensure_resident("a") is None
        assert server.stats.cycles == before

    def test_lru_by_last_launch_picks_coldest(self):
        server = elastic_server()
        clients = {name: attach(server, name, 1 << 20)
                   for name in ("a", "b", "c")}
        handles = clients["a"].load_module_ptx(saxpy_ptx())
        buf = clients["a"].malloc(512)
        # "a" attached first (coldest by age) but launches last:
        clients["a"].launch_kernel(handles["saxpy"], (1, 1, 1),
                                   (32, 1, 1), [buf, buf + 256, 1.0, 32])
        clients["a"].synchronize()
        victims = server.elastic._lru_victims()
        assert victims[0] == "b"  # oldest un-launched attach
        assert victims[-1] == "a"

    def test_make_room_swaps_cold_tenants_for_newcomer(self):
        server = elastic_server()
        for i in range(4):
            # Genuinely heavy residents: high water above the halfway
            # mark, so neither shrink nor compaction can make room.
            attach(server, f"old{i}", 4 << 20).malloc(3 << 20)
        assert not server.allocator.can_carve(4 << 20)
        assert server.elastic.make_room(4 << 20)
        newcomer = attach(server, "new", 4 << 20)
        assert server.stats.swaps_out >= 1
        buf = newcomer.malloc(4096)
        newcomer.memcpy_h2d(buf, b"\x01" * 4096)
        newcomer.synchronize()

    def test_hard_cap_bounds_declared_bytes(self):
        server = elastic_server(oversubscription_ratio=1.25,
                                enable_shrink=False,
                                enable_compaction=False)
        total = server.allocator.total_bytes
        declared = 0
        while server.elastic.make_room(4 << 20):
            attach(server, f"t{declared}", 4 << 20)
            declared += 4 << 20
        assert declared <= 1.25 * total
        assert server.elastic.declared_bytes() == declared

    def test_make_room_prefers_shrink_over_swap(self):
        server = elastic_server()
        for i in range(4):
            attach(server, f"light{i}", 4 << 20).malloc(4096)
        assert server.elastic.make_room(4 << 20)
        # Shrinking the over-provisioned residents was enough.
        assert server.stats.partitions_shrunk >= 1
        assert server.stats.swaps_out == 0

    def test_swap_gated(self):
        server = elastic_server(enable_oversubscription=False)
        attach(server, "a", 1 << 20)
        with pytest.raises(GuardianError, match="oversubscription"):
            server.elastic.swap_out("a")

    def test_detach_while_swapped_drops_image(self):
        server = elastic_server()
        client = attach(server, "a", 1 << 20)
        server.elastic.swap_out("a")
        client.close()
        assert not server.elastic.is_swapped("a")
        assert server.elastic.swapped_bytes == 0
        assert server.tenant_count == 0


# --------------------------------------------------------------------------
# DefragPolicy family
# --------------------------------------------------------------------------


class TestDefragPolicy:
    def test_registry_resolves(self):
        assert isinstance(defrag_policy("never"), NeverDefragPolicy)
        policy = defrag_policy("threshold", threshold=0.25)
        assert isinstance(policy, ThresholdDefragPolicy)
        assert policy.threshold == 0.25

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="never.*threshold"):
            defrag_policy("aggressive")

    def test_threshold_validates_range(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            ThresholdDefragPolicy(threshold=1.5)

    def test_threshold_score_trigger(self):
        policy = ThresholdDefragPolicy(threshold=0.5)
        view = {"score": 0.4, "largest_carveable": 4,
                "bytes_unpartitioned": 10, "gaps": 3}
        assert policy.should_defrag(view)
        view["score"] = 0.6
        assert not policy.should_defrag(view)

    def test_threshold_want_bytes_trigger(self):
        policy = ThresholdDefragPolicy(threshold=0.0)
        view = {"score": 1.0, "largest_carveable": 1 << 20,
                "bytes_unpartitioned": 4 << 20, "gaps": 4}
        assert policy.should_defrag(view, want_bytes=2 << 20)
        assert not policy.should_defrag(view, want_bytes=1 << 20)

    def test_never_is_never(self):
        assert not NeverDefragPolicy().should_defrag(
            {"score": 0.0, "largest_carveable": 0,
             "bytes_unpartitioned": 1, "gaps": 9}, want_bytes=1 << 30)


# --------------------------------------------------------------------------
# Telemetry: gauges and counters move with the engine
# --------------------------------------------------------------------------


class TestElasticTelemetry:
    def test_ops_and_gauges_recorded(self):
        server = elastic_server(telemetry=True)
        client = attach(server, "a", 4 << 20)
        client.malloc(4096)
        client.shrink_partition()
        server.elastic.swap_out("a")
        telemetry = server.telemetry
        assert telemetry.elastic_ops.value(op="shrink") == 1
        assert telemetry.elastic_ops.value(op="swap_out") == 1
        assert telemetry.elastic_bytes.value(op="swap_out") == 4096
        assert telemetry.elastic_swapped.value() == 4096
        score = telemetry.elastic_fragmentation.value()
        assert score is not None and 0.0 <= score <= 1.0

    def test_fragmentation_view_matches_allocator(self):
        server = elastic_server(telemetry=True)
        attach(server, "a", 1 << 20)
        view = server.elastic.fragmentation()
        assert view["score"] == server.allocator.fragmentation_score()
        assert view["largest_carveable"] == \
            server.allocator.largest_carveable()
        assert server.telemetry.elastic_fragmentation.value() == \
            view["score"]


# --------------------------------------------------------------------------
# Bit-identity pin: knobs on but unused == stock, cycle for cycle
# --------------------------------------------------------------------------


def _replay(server, blocks):
    """A deterministic workload driven purely by the hypothesis
    ``blocks`` structure: attach, deploy, per-block h2d/launch/sync,
    detach. Returns the cycle-relevant fingerprint."""
    server.attach("alice", 1 << 20)
    handles, _ = server.register_fatbin(
        "alice", build_fatbin(build_module([saxpy_kernel()]),
                              "lib", "11.7"))
    handle = handles["saxpy"]
    buf, _ = server.malloc("alice", 8192)
    for block in blocks:
        for op in block:
            if op == 0:
                server.memcpy_h2d(
                    "alice", buf,
                    np.ones(16, dtype=np.float32).tobytes())
            else:
                server.launch_kernel(
                    "alice", handle, (1, 1, 1), (16, 1, 1),
                    [buf, buf + 4096, 2.0, 16])
        server.synchronize("alice")
    server.detach("alice")
    return (server.stats.cycles, server.stats.launches,
            server.stats.transfers_checked, server.stats.syncs)


class TestBitIdentityPin:
    @given(blocks=st.lists(
        st.lists(st.integers(min_value=0, max_value=1),
                 min_size=1, max_size=4),
        min_size=1, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_enabled_but_unused_knobs_are_bit_identical(self, blocks):
        """The hypothesis property pinning Table 5 / Fig. 7-13: the
        engine's passive hooks (attach/launch recency, lifecycle
        forget) charge nothing, so a server with every elastic knob ON
        but no elastic operation invoked produces cycle totals
        bit-identical to stock."""
        stock = _replay(GuardianServer(Device(SMALL)), blocks)
        elastic = _replay(
            GuardianServer(Device(SMALL), config=ServerConfig.elastic()),
            blocks)
        assert elastic == stock
