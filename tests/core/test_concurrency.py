"""Concurrent multi-tenant dispatch (DESIGN.md §7).

Covers the three contracts the concurrency work must keep:

1. **Bit-identity off**: with ``ServerConfig.concurrency`` disabled
   (the default), every cycle total is unchanged — the lanes are pure
   additive bookkeeping that never touches the serial clock.
2. **Work conservation on**: with lanes enabled, the sum of per-lane
   busy cycles equals ``stats.cycles`` and the makespan is the lane
   critical path — shorter than the serial sum for independent
   tenants, never shorter than any single lane.
3. **Safety is config-independent**: coalesced transfer checks still
   fence every out-of-bounds chunk; the thread-pooled patcher runs —
   and charges — exactly one patch per distinct content hash.
"""

import threading

import pytest

from repro.analysis.metrics import collect_hotpath, collect_lanes
from repro.analysis.reporting import render_lane_report
from repro.core.ipc import IPCChannel, IPCStats
from repro.core.patcher import (
    ParallelPatcher,
    PTXPatcher,
    ThreadSafePatchCache,
)
from repro.core.policy import (
    FairShareLanePolicy,
    FencingMode,
    FifoLanePolicy,
    lane_scheduling_policy,
)
from repro.core.server import GuardianServer, ServerConfig, _Lane
from repro.errors import BoundsViolation, PartitionError
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.ptx.emitter import emit_module

from tests.conftest import saxpy_module

PARTITION = 1 << 20


def make_server(config=None, mode=FencingMode.BITWISE):
    return GuardianServer(Device(QUADRO_RTX_A4000), mode,
                          config=config or ServerConfig())


def run_tenant(server, app_id, ptx):
    """One tenant's full life: attach, deploy, copy, launch, sync."""
    server.attach(app_id, PARTITION)
    handles, _ = server.load_module_ptx(app_id, ptx)
    address, _ = server.malloc(app_id, 4096)
    server.memcpy_h2d(app_id, address, b"\x01" * 512)
    server.memcpy_h2d(app_id, address + 512, b"\x02" * 512)
    server.launch_kernel(app_id, handles["saxpy"], (1, 1, 1), (32, 1, 1),
                         [address, address + 2048, 2.0, 32])
    server.synchronize(app_id)


def run_workload(config=None, tenants=4):
    server = make_server(config)
    ptx = emit_module(saxpy_module())
    for index in range(tenants):
        run_tenant(server, f"t{index}", ptx)
    return server


class TestSerialBitIdentity:
    def test_new_knob_defaults_change_nothing(self):
        """A config spelling out every new knob's default produces the
        exact stats of the stock config — the Table 5 / Fig. 7-13 pin."""
        stock = run_workload(ServerConfig())
        spelled = run_workload(ServerConfig(
            concurrency=False,
            lane_policy="fifo",
            patch_workers=8,
            coalesce_transfer_checks=False,
        ))
        assert spelled.stats == stock.stats

    def test_serial_makespan_is_the_busy_clock(self):
        server = run_workload(ServerConfig(), tenants=3)
        assert server.makespan_cycles() == server.stats.cycles
        assert server.lanes() == []
        assert server.stats.checks_coalesced == 0
        assert server.stats.lanes_retired == 0

    def test_hotpath_config_unchanged_by_concurrency_fields(self):
        """hotpath() still leaves the concurrency knobs off."""
        config = ServerConfig.hotpath()
        assert not config.concurrency
        assert not config.coalesce_transfer_checks


class TestConcurrentAccounting:
    def test_work_is_conserved_across_lanes(self):
        server = run_workload(ServerConfig.concurrent(), tenants=4)
        lanes = server.lanes()
        assert len(lanes) == 4
        assert sum(lane.busy for lane in lanes) == pytest.approx(
            server.stats.cycles
        )

    def test_makespan_is_the_critical_path(self):
        server = run_workload(ServerConfig.concurrent(), tenants=4)
        makespan = server.makespan_cycles()
        assert makespan < server.stats.cycles
        assert makespan >= max(lane.clock for lane in server.lanes())

    def test_eight_independent_tenants_meet_the_speedup_floor(self):
        server = run_workload(ServerConfig.concurrent(), tenants=8)
        speedup = server.stats.cycles / server.makespan_cycles()
        assert speedup >= 2.5

    def test_single_tenant_gains_nothing(self):
        """One lane cannot overlap with itself: its makespan is its
        busy clock (critical-section waits included)."""
        server = run_workload(ServerConfig.concurrent(), tenants=1)
        (lane,) = server.lanes()
        assert server.makespan_cycles() == pytest.approx(lane.clock)
        assert lane.clock == pytest.approx(lane.busy + lane.stalled)

    def test_releases_are_monotone_per_lane(self):
        server = make_server(ServerConfig.concurrent())
        ptx = emit_module(saxpy_module())
        server.attach("a", PARTITION)
        server.attach("b", PARTITION)
        for app_id in ("a", "b"):
            handles, _ = server.load_module_ptx(app_id, ptx)
            address, _ = server.malloc(app_id, 4096)
            releases = []
            for chunk in range(3):
                server.memcpy_h2d(app_id, address + chunk * 256,
                                  b"\x05" * 256)
                releases.append(server._release())
            assert releases == sorted(releases)


class TestCoalescedTransferChecks:
    def test_contiguous_chunks_charge_one_check(self):
        server = make_server(ServerConfig.concurrent())
        server.attach("a", PARTITION)
        address, _ = server.malloc("a", 4096)
        baseline = server.stats.transfers_checked
        for chunk in range(4):
            server.memcpy_h2d("a", address + chunk * 256, b"\x01" * 256)
        assert server.stats.transfers_checked - baseline == 1
        assert server.stats.checks_coalesced == 3

    def test_coalesced_chunks_cost_less(self):
        def charged(config):
            server = make_server(config)
            server.attach("a", PARTITION)
            address, _ = server.malloc("a", 4096)
            total = 0.0
            for chunk in range(8):
                _, cycles = server.memcpy_h2d(
                    "a", address + chunk * 256, b"\x01" * 256
                )
                total += cycles
            return total

        saved = charged(ServerConfig()) - charged(ServerConfig.concurrent())
        server = make_server()
        assert saved == 7 * server.costs.transfer_check

    def test_discontinuity_starts_a_new_run(self):
        server = make_server(ServerConfig.concurrent())
        server.attach("a", PARTITION)
        address, _ = server.malloc("a", 8192)
        baseline = server.stats.transfers_checked
        server.memcpy_h2d("a", address, b"\x01" * 256)
        server.memcpy_h2d("a", address + 4096, b"\x01" * 256)  # gap
        assert server.stats.transfers_checked - baseline == 2
        assert server.stats.checks_coalesced == 0

    def test_runs_are_per_operation_kind(self):
        """Interleaved h2d/memset chunks keep separate runs — each kind
        coalesces against its own tail, not the other's."""
        server = make_server(ServerConfig.concurrent())
        server.attach("a", PARTITION)
        address, _ = server.malloc("a", 8192)
        baseline = server.stats.transfers_checked
        for chunk in range(3):
            server.memcpy_h2d("a", address + chunk * 256, b"\x01" * 256)
            server.memset("a", address + 4096 + chunk * 256, 0, 256)
        assert server.stats.transfers_checked - baseline == 2
        assert server.stats.checks_coalesced == 4

    def test_violation_mid_run_is_still_fenced(self):
        """Coalescing skips charges, never the containment predicate:
        the chunk that crosses the partition edge is rejected."""
        server = make_server(ServerConfig.concurrent())
        server.attach("a", PARTITION)
        record = server.allocator.bounds.read("a")
        edge = record.end - 256
        server.memcpy_h2d("a", edge, b"\x01" * 256)
        with pytest.raises(BoundsViolation):
            server.memcpy_h2d("a", record.end, b"\x01" * 256)
        assert server.stats.transfers_rejected == 1

    def test_detach_drops_the_run_memo(self):
        server = make_server(ServerConfig.concurrent())
        server.attach("a", PARTITION)
        address, _ = server.malloc("a", 4096)
        server.memcpy_h2d("a", address, b"\x01" * 256)
        server.detach("a")
        assert "a" not in server._check_runs


class TestParallelPatching:
    def test_concurrent_same_hash_misses_run_one_patch(self):
        """N threads racing the same cold text produce one patch: the
        single-flight owner patches, every loser joins its Future."""
        patcher = ParallelPatcher(
            PTXPatcher(FencingMode.BITWISE),
            cache=ThreadSafePatchCache(8),
            workers=4,
        )
        ptx = emit_module(saxpy_module())
        barrier = threading.Barrier(8)
        outcomes = []
        lock = threading.Lock()

        def race():
            barrier.wait()
            outcome = patcher.patch(ptx)
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=race) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert patcher.patches_run == 1
        assert len(outcomes) == 8
        assert sum(1 for o in outcomes if o.source == "patched") == 1
        assert {o.patched_text for o in outcomes} == {
            outcomes[0].patched_text
        }

    def test_one_patch_one_charge_across_tenants(self):
        """Two tenants deploying the same text: one miss charged a full
        patch, one hit charged a probe — never two patches."""
        server = make_server(
            ServerConfig.concurrent(charge_patch_cycles=True)
        )
        ptx = emit_module(saxpy_module())
        server.attach("a", PARTITION)
        server.attach("b", PARTITION)
        before = server.stats.cycles
        server.load_module_ptx("a", ptx)
        first = server.stats.cycles - before
        before = server.stats.cycles
        server.load_module_ptx("b", ptx)
        second = server.stats.cycles - before
        assert server.stats.patch_cache_misses == 1
        assert server.stats.patch_cache_hits == 1
        assert first >= server.costs.patch_module
        assert second == server.costs.patch_lookup

    def test_patch_many_preserves_order_and_patches_each_once(self):
        patcher = ParallelPatcher(
            PTXPatcher(FencingMode.BITWISE),
            cache=ThreadSafePatchCache(8),
            workers=4,
        )
        base = emit_module(saxpy_module())
        texts = [base + f"\n// variant {index}\n" for index in range(4)]
        outcomes = patcher.patch_many(texts)
        assert patcher.patches_run == 4
        assert [o.source for o in outcomes] == ["patched"] * 4
        repeat = patcher.patch_many(texts)
        assert patcher.patches_run == 4
        assert [o.source for o in repeat] == ["hit"] * 4

    def test_duplicates_inside_one_batch_merge(self):
        patcher = ParallelPatcher(
            PTXPatcher(FencingMode.BITWISE),
            cache=ThreadSafePatchCache(8),
            workers=4,
        )
        ptx = emit_module(saxpy_module())
        outcomes = patcher.patch_many([ptx] * 6)
        assert patcher.patches_run == 1
        assert sum(1 for o in outcomes if o.source == "patched") == 1


class TestLaneQuarantine:
    def test_quarantine_drains_one_lane_not_the_world(self):
        server = run_workload(ServerConfig.concurrent(), tenants=3)
        siblings = {
            lane.app_id: (lane.clock, lane.busy, lane.critical)
            for lane in server.lanes() if lane.app_id != "t1"
        }
        epochs_before = {
            app: epoch
            for app, epoch in server.allocator.bounds.epochs().items()
            if app != "t1"
        }
        server.quarantine("t1", reason="test eviction")
        assert server.stats.lanes_retired == 1
        assert server.lane_view("t1") is None
        for lane in server.lanes():
            if lane.app_id != "t1":
                assert siblings[lane.app_id] == (
                    lane.clock, lane.busy, lane.critical
                )
        epochs_after = {
            app: epoch
            for app, epoch in server.allocator.bounds.epochs().items()
            if app != "t1"
        }
        assert epochs_after == epochs_before

    def test_retired_lane_still_counts_toward_makespan(self):
        server = run_workload(ServerConfig.concurrent(), tenants=2)
        makespan_before = server.makespan_cycles()
        server.quarantine("t0", reason="test eviction")
        assert server.makespan_cycles() == makespan_before
        assert len(server.lanes()) == 2  # one live, one retired


class TestLanePolicies:
    def test_factory_resolves_names_and_aliases(self):
        assert isinstance(lane_scheduling_policy("fifo"), FifoLanePolicy)
        assert isinstance(lane_scheduling_policy("fair"),
                          FairShareLanePolicy)
        assert isinstance(lane_scheduling_policy("fair-share"),
                          FairShareLanePolicy)
        with pytest.raises(ValueError):
            lane_scheduling_policy("round-robin")

    def test_fifo_grants_as_soon_as_both_are_free(self):
        lane = _Lane(app_id="a", clock=100.0, critical=5_000.0)
        assert FifoLanePolicy().grant(lane, {"a": lane}, 250.0) == 250.0

    def test_fair_share_throttles_the_section_hog(self):
        hog = _Lane(app_id="hog", clock=100.0, critical=10_000.0)
        meek = _Lane(app_id="meek", clock=100.0, critical=0.0)
        lanes = {"hog": hog, "meek": meek}
        policy = FairShareLanePolicy()
        assert policy.grant(hog, lanes, 250.0) == 20_000.0
        assert policy.grant(meek, lanes, 250.0) == 250.0

    def test_fair_policy_still_conserves_work(self):
        server = run_workload(
            ServerConfig.concurrent(lane_policy="fair"), tenants=4
        )
        assert sum(lane.busy for lane in server.lanes()) == pytest.approx(
            server.stats.cycles
        )
        assert server.makespan_cycles() < server.stats.cycles

    def test_unknown_policy_rejected_at_server_construction(self):
        with pytest.raises(ValueError):
            make_server(ServerConfig(lane_policy="round-robin"))


class TestSnapshotReads:
    def test_read_equals_lookup(self):
        server = make_server()
        server.attach("a", PARTITION)
        table = server.allocator.bounds
        assert table.read("a") is table.lookup("a")

    def test_read_unknown_app_raises(self):
        server = make_server()
        with pytest.raises(PartitionError):
            server.allocator.bounds.read("ghost")

    def test_snapshots_are_immutable_epochs(self):
        server = make_server()
        table = server.allocator.bounds
        server.attach("a", PARTITION)
        old = table.snapshot()
        server.attach("b", PARTITION)
        new = table.snapshot()
        assert "b" not in old and "b" in new
        assert new.version == old.version + 1
        assert old.read("a") is new.read("a")

    def test_non_power_of_two_record_has_no_mask(self):
        server = make_server(mode=FencingMode.MODULO)
        server.attach("a", 3_000_000)
        record = server.allocator.bounds.read("a")
        assert record.mask == 0
        assert record.magic > 0
        assert record.end == record.base + record.size


class TestLaneMetrics:
    def test_collect_lanes_summarises_the_run(self):
        server = run_workload(ServerConfig.concurrent(), tenants=4)
        metrics = collect_lanes(server)
        assert metrics.lane_count == 4
        assert metrics.speedup > 1.0
        assert 0.0 < metrics.overlap_efficiency <= 1.0
        assert 0.0 <= metrics.critical_share < 1.0
        assert set(metrics.lanes) == {f"t{i}" for i in range(4)}
        for app_id in metrics.lanes:
            assert 0.0 < metrics.occupancy(app_id) <= 1.0

    def test_serial_run_degenerates_cleanly(self):
        server = run_workload(ServerConfig(), tenants=2)
        metrics = collect_lanes(server)
        assert metrics.lane_count == 0
        assert metrics.speedup == 1.0
        assert metrics.overlap_efficiency == 1.0

    def test_render_lane_report_mentions_the_speedup(self):
        server = run_workload(ServerConfig.concurrent(), tenants=4)
        report = render_lane_report(collect_lanes(server))
        assert "modelled speedup" in report
        assert "critical section" in report
        for app_id in ("t0", "t3"):
            assert app_id in report


class TestIPCAbortStats:
    def test_mean_batch_size_guards_zero_flushes(self):
        assert IPCStats().mean_batch_size == 0.0

    def test_aborted_batches_counted_separately(self):
        server = make_server(ServerConfig(enable_ipc_batching=True))
        server.attach("a", PARTITION)
        address, _ = server.malloc("a", 4096)
        channel = IPCChannel(server, "a", batching=True, max_batch=64)
        channel.call("memcpy_h2d", address, b"\x01" * 64, 0, sync=False)
        channel.call("memcpy_h2d", address + 64, b"\x01" * 64, 0,
                     sync=False)
        discarded = channel.abort()
        assert discarded == 2
        assert channel.stats.aborted_batches == 1
        assert channel.stats.batches == 0
        assert channel.stats.mean_batch_size == 0.0

    def test_idempotent_abort_counts_once(self):
        server = make_server()
        channel = IPCChannel(server, "a", batching=True)
        assert channel.abort() == 0
        assert channel.stats.aborted_batches == 0

    def test_collect_hotpath_excludes_discarded_from_roundtrips(self):
        server = make_server(ServerConfig(enable_ipc_batching=True))
        server.attach("a", PARTITION)
        address, _ = server.malloc("a", 4096)
        channel = IPCChannel(server, "a", batching=True, max_batch=64)
        channel.call("synchronize")  # 1 sync round-trip
        channel.call("memcpy_h2d", address, b"\x01" * 64, 0, sync=False)
        channel.abort()  # the queued call never crosses
        metrics = collect_hotpath(server, [channel])
        assert metrics.ipc_messages == 2
        assert metrics.ipc_roundtrips == 1
        assert metrics.ipc_discarded_calls == 1
        assert metrics.ipc_aborted_batches == 1
