"""PTX patcher structural tests (paper §4.3, Listing 2)."""

import pytest

from repro.errors import PatcherError
from repro.core.patcher import PTXPatcher, count_memory_ops
from repro.core.policy import FencingMode
from repro.libs.kernels import blas, dnn
from repro.ptx import emit_module, parse_module, validate_module
from repro.ptx.ast import Immediate, MemRef, Register
from repro.ptx.builder import KernelBuilder, build_module

from tests.conftest import saxpy_kernel, saxpy_module, writer_kernel


def opcodes_of(kernel):
    return [i.opcode for i in kernel.instructions()]


class TestBitwisePatch:
    def test_listing2_shape(self):
        """Patched saxpy must contain the Listing 2 pair before every
        fenced access: and.b64 with the mask, or.b64 with the base."""
        patched, report = PTXPatcher(FencingMode.BITWISE).patch_kernel(
            saxpy_kernel())
        ops = opcodes_of(patched)
        assert ops.count("and.b64") == report.sites
        assert ops.count("or.b64") == report.sites
        # AND comes immediately before OR, before each access.
        for index, op in enumerate(ops):
            if op == "and.b64":
                assert ops[index + 1] == "or.b64"

    def test_two_extra_params(self):
        patched, report = PTXPatcher(FencingMode.BITWISE).patch_kernel(
            saxpy_kernel())
        assert report.extra_params == 2
        assert report.extra_param_bytes == 16  # the paper's constant
        names = [p.name for p in patched.params]
        assert names[-2].endswith("guardian_base")
        assert names[-1].endswith("guardian_mask")

    def test_every_memory_access_instrumented(self):
        kernel = saxpy_kernel()
        native_accesses = len(list(kernel.memory_accesses()))
        _, report = PTXPatcher(FencingMode.BITWISE).patch_kernel(kernel)
        assert report.sites == native_accesses

    def test_param_loads_not_instrumented(self):
        """ld.param reads the launch buffer, not shared DRAM."""
        patched, _ = PTXPatcher(FencingMode.BITWISE).patch_kernel(
            saxpy_kernel())
        param_loads = [i for i in patched.instructions()
                       if i.opcode.startswith("ld.param")]
        # Original params + the two guardian params.
        assert len(param_loads) == 4 + 2

    def test_shared_accesses_not_instrumented(self):
        """Shared memory is on-chip and per-block — never fenced."""
        kernel = [k for k in blas.all_kernels()
                  if k.name == "cublas_sgemm_tiled"][0]
        patched, report = PTXPatcher(FencingMode.BITWISE).patch_kernel(
            kernel)
        shared_ops = [i for i in patched.instructions()
                      if i.space == "shared"]
        original_shared = [i for i in kernel.instructions()
                           if i.space == "shared"]
        assert len(shared_ops) == len(original_shared)

    def test_direct_mode_patched_in_place(self):
        """Register-direct addressing masks the register itself
        (Listing 2's in-place rewrite)."""
        b = KernelBuilder("direct", params=[("p", "u64")])
        pointer = b.load_param_ptr("p")
        b.st_global("u32", pointer, 7)
        patched, report = PTXPatcher(FencingMode.BITWISE).patch_kernel(
            b.build())
        assert report.direct_sites == 1
        and_instr = [i for i in patched.instructions()
                     if i.opcode == "and.b64"][0]
        store = [i for i in patched.instructions() if i.is_store][0]
        assert and_instr.operands[0] == store.operands[0].base

    def test_offset_mode_uses_temporary(self):
        """address+offset materialises the effective address first
        (the paper's second addressing mode)."""
        b = KernelBuilder("offset", params=[("p", "u64")])
        pointer = b.load_param_ptr("p")
        b.st_global("u32", pointer, 7, offset=8)
        patched, report = PTXPatcher(FencingMode.BITWISE).patch_kernel(
            b.build())
        assert report.offset_sites == 1
        store = [i for i in patched.instructions() if i.is_store][0]
        memref = store.operands[0]
        assert memref.offset == 0  # folded into the temp register
        adds = [i for i in patched.instructions()
                if i.opcode == "add.s64"
                and isinstance(i.operands[2], Immediate)
                and i.operands[2].value == 8]
        assert adds

    def test_patched_output_validates(self):
        patcher = PTXPatcher(FencingMode.BITWISE)
        patched, _ = patcher.patch_module(saxpy_module())
        validate_module(patched)

    def test_text_level_roundtrip(self):
        """The production path: text in (cuobjdump), text out (JIT)."""
        patcher = PTXPatcher(FencingMode.BITWISE)
        text, reports = patcher.patch_text(emit_module(saxpy_module()))
        module = parse_module(text)
        validate_module(module)
        assert reports[0].sites > 0


class TestCheckingPatch:
    def test_conditional_checks_emitted(self):
        patched, report = PTXPatcher(FencingMode.CHECKING).patch_kernel(
            writer_kernel())
        ops = opcodes_of(patched)
        assert "setp.lt.u64" in ops
        assert "setp.gt.u64" in ops
        guarded_branches = [i for i in patched.instructions()
                            if i.base_op == "bra" and i.guard]
        assert len(guarded_branches) >= 2 * report.sites

    def test_oob_label_returns(self):
        patched, _ = PTXPatcher(FencingMode.CHECKING).patch_kernel(
            writer_kernel())
        labels = patched.labels()
        assert "$GUARDIAN_OOB" in labels

    def test_extra_params_base_and_end(self):
        patched, _ = PTXPatcher(FencingMode.CHECKING).patch_kernel(
            writer_kernel())
        names = [p.name for p in patched.params]
        assert names[-1].endswith("guardian_end")


class TestModuloPatch:
    def test_inline_modulo_not_rem(self):
        """The patch must avoid the 2x-cost rem function call: it uses
        the multiply-by-reciprocal magic instead (§4.4)."""
        patched, _ = PTXPatcher(FencingMode.MODULO).patch_kernel(
            writer_kernel())
        ops = opcodes_of(patched)
        assert "mul.hi.u64" in ops
        assert not any(op.startswith("rem.u64") for op in ops)

    def test_three_extra_params(self):
        patched, report = PTXPatcher(FencingMode.MODULO).patch_kernel(
            writer_kernel())
        assert report.extra_params == 3
        assert patched.params[-1].name.endswith("guardian_magic")

    def test_correction_step_present(self):
        patched, _ = PTXPatcher(FencingMode.MODULO).patch_kernel(
            writer_kernel())
        ops = opcodes_of(patched)
        assert "selp.b64" in ops


class TestGuardsAndBranches:
    def test_guarded_store_normalised(self):
        """@%p st.global ... becomes a branch-around block so fencing
        code can't corrupt the predicated-off path."""
        b = KernelBuilder("guarded", params=[("p", "u64")])
        pointer = b.load_param_ptr("p")
        pred = b.setp("eq", "u32", Immediate(1), Immediate(1))
        from repro.ptx.ast import Guard

        b.emit("st.global.u32", MemRef(pointer), Immediate(7),
               guard=Guard(register=pred.name))
        patched, _ = PTXPatcher(FencingMode.BITWISE).patch_kernel(
            b.build())
        stores = [i for i in patched.instructions() if i.is_store]
        assert all(i.guard is None for i in stores)
        validate_module(build_module([patched]))

    def test_brx_index_wrapped(self):
        b = KernelBuilder("dispatch", params=[("sel", "u32")])
        selector = b.load_param("sel", "u32")
        l0, l1 = b.fresh_label("a"), b.fresh_label("b")
        b.brx_idx(selector, [l0, l1])
        b.label(l0)
        b.label(l1)
        patched, report = PTXPatcher(FencingMode.BITWISE).patch_kernel(
            b.build())
        assert report.brx_sites == 1
        rems = [i for i in patched.instructions()
                if i.opcode == "rem.u32"]
        assert rems and rems[0].operands[2] == Immediate(2)

    def test_func_instrumented_like_entry(self):
        """'Our patcher instruments .func in the same way' (§4.3)."""
        helper = dnn.helper_func()
        assert not helper.is_entry
        patched, report = PTXPatcher(FencingMode.BITWISE).patch_kernel(
            helper)
        assert not patched.is_entry
        assert report.sites > 0
        assert "and.b64" in opcodes_of(patched)


class TestModes:
    def test_none_mode_is_identity(self):
        kernel = saxpy_kernel()
        patched, report = PTXPatcher(FencingMode.NONE).patch_kernel(
            kernel)
        assert patched is kernel
        assert report.extra_instructions == 0

    def test_reserved_prefix_collision_detected(self):
        bad = parse_module(
            ".version 7.5\n.target sm_86\n.address_size 64\n"
            ".visible .entry k()\n{\n.reg .b64 %grd<2>;\nret;\n}"
        )
        with pytest.raises(PatcherError, match="reserved"):
            PTXPatcher(FencingMode.BITWISE).patch_kernel(
                bad.kernels["k"])

    def test_bad_mode_rejected(self):
        with pytest.raises(PatcherError):
            PTXPatcher("bitwise")

    @pytest.mark.parametrize("mode", [
        FencingMode.BITWISE, FencingMode.MODULO, FencingMode.CHECKING,
    ])
    def test_all_library_kernels_patch_and_validate(self, mode):
        module = build_module(blas.all_kernels() + dnn.all_kernels())
        patched, reports = PTXPatcher(mode).patch_module(module)
        validate_module(patched)
        assert len(reports) == len(module.kernels)
        for report in reports:
            original = module.kernels[report.kernel]
            assert report.sites == len(
                list(original.memory_accesses()))


class TestCensus:
    def test_count_memory_ops(self):
        census = count_memory_ops(build_module(dnn.all_kernels()))
        assert census.kernels == 14
        assert census.funcs == 1
        assert census.loads > census.stores > 0

    def test_census_matches_patch_reports(self):
        module = build_module(blas.all_kernels())
        census = count_memory_ops(module)
        _, reports = PTXPatcher(FencingMode.BITWISE).patch_module(module)
        assert census.loads == sum(r.loads_instrumented for r in reports)
        assert census.stores == sum(
            r.stores_instrumented for r in reports)
