"""GuardianServer tests (paper §4.2)."""

import numpy as np
import pytest

from repro.errors import BoundsViolation, GuardianError, LaunchError
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer
from repro.driver.fatbin import build_fatbin
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000

from tests.conftest import attack_module, saxpy_module


@pytest.fixture
def device():
    return Device(QUADRO_RTX_A4000)


@pytest.fixture
def server(device):
    return GuardianServer(device, FencingMode.BITWISE)


def attach(server, app_id, size=1 << 20):
    server.attach(app_id, size)
    return server.allocator.bounds.lookup(app_id)


class TestSetup:
    def test_reserves_all_device_memory(self, device):
        server = GuardianServer(device, FencingMode.BITWISE)
        assert device.allocator.bytes_free == 0
        assert server.allocator.total_bytes > 0

    def test_forces_ptx_jit(self, server):
        """Embedded cuBINs must never bypass patched PTX."""
        assert server.driver.force_ptx_jit

    def test_single_context(self, device, server):
        assert len(device.contexts) == 1


class TestTenantLifecycle:
    def test_attach_creates_partition_and_stream(self, server):
        record = attach(server, "alice")
        assert record.size == 1 << 20
        assert server.tenant_count == 1

    def test_double_attach_rejected(self, server):
        attach(server, "alice")
        with pytest.raises(GuardianError):
            server.attach("alice", 1 << 20)

    def test_detach_releases_partition(self, server):
        attach(server, "alice")
        server.detach("alice")
        assert server.tenant_count == 0
        record = attach(server, "bob", 1 << 20)
        assert record is not None

    def test_tenants_get_distinct_streams(self, server):
        attach(server, "alice")
        attach(server, "bob")
        alice_stream, _ = server.create_stream("alice")
        bob_stream, _ = server.create_stream("bob")
        assert alice_stream != bob_stream


class TestMemoryOps:
    def test_malloc_inside_partition(self, server):
        record = attach(server, "alice")
        address, _ = server.malloc("alice", 4096)
        assert record.contains(address, 4096)

    def test_transfer_checks(self, server):
        attach(server, "alice")
        attach(server, "mallory")
        alice_buf, _ = server.malloc("alice", 256)
        with pytest.raises(BoundsViolation):
            server.memcpy_h2d("mallory", alice_buf, b"x" * 16)
        assert server.stats.transfers_rejected == 1

    def test_d2h_source_checked(self, server):
        attach(server, "alice")
        attach(server, "mallory")
        alice_buf, _ = server.malloc("alice", 256)
        server.memcpy_h2d("alice", alice_buf, b"s3cret!" + b"\x00" * 249)
        with pytest.raises(BoundsViolation):
            server.memcpy_d2h("mallory", alice_buf, 256)

    def test_d2d_checks_both_ends(self, server):
        attach(server, "alice")
        attach(server, "mallory")
        alice_buf, _ = server.malloc("alice", 256)
        mallory_buf, _ = server.malloc("mallory", 256)
        with pytest.raises(BoundsViolation):
            server.memcpy_d2d("mallory", mallory_buf, alice_buf, 256)
        with pytest.raises(BoundsViolation):
            server.memcpy_d2d("mallory", alice_buf, mallory_buf, 256)

    def test_memset_checked(self, server):
        attach(server, "alice")
        attach(server, "mallory")
        alice_buf, _ = server.malloc("alice", 256)
        with pytest.raises(BoundsViolation):
            server.memset("mallory", alice_buf, 0, 256)

    def test_partial_overlap_rejected(self, server):
        """A transfer straddling the partition end is fenced."""
        record = attach(server, "alice")
        tail = record.end - 64
        with pytest.raises(BoundsViolation):
            server.memcpy_h2d("alice", tail, b"x" * 128)

    def test_legal_transfer_passes(self, server):
        attach(server, "alice")
        buf, _ = server.malloc("alice", 256)
        server.memcpy_h2d("alice", buf, b"y" * 256)
        data, _ = server.memcpy_d2h("alice", buf, 256)
        assert data == b"y" * 256


class TestKernelPath:
    def test_register_patches_and_loads_both_variants(self, server):
        attach(server, "alice")
        handles, _ = server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        assert "saxpy" in handles
        assert server.stats.modules_loaded == 2  # sandboxed + native
        assert server.stats.kernels_patched == 1

    def test_cubin_only_fatbin_rejected(self, server):
        """Guardian cannot sandbox binaries without PTX."""
        from repro.driver.fatbin import FatBinary, FatbinEntry

        attach(server, "alice")
        cubin_only = FatBinary(name="old", entries=[
            FatbinEntry(kind="cubin", arch="ampere", payload=b"\x00"),
        ])
        with pytest.raises(GuardianError, match="cuBIN-only"):
            server.register_fatbin("alice", cubin_only)

    def test_launch_executes_sandboxed_kernel(self, server, device):
        attach(server, "alice")
        handles, _ = server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        buf, _ = server.malloc("alice", 512)
        xs = np.ones(32, dtype=np.float32)
        server.memcpy_h2d("alice", buf + 256, xs.tobytes())
        server.launch_kernel("alice", handles["saxpy"],
                             (1, 1, 1), (32, 1, 1),
                             [buf, buf + 256, 4.0, 32])
        data, _ = server.memcpy_d2h("alice", buf, 128)
        assert np.allclose(np.frombuffer(data, np.float32), 4.0)

    def test_unknown_handle_rejected(self, server):
        attach(server, "alice")
        with pytest.raises(LaunchError):
            server.launch_kernel("alice", 0x9999, (1, 1, 1), (1, 1, 1),
                                 [])

    def test_handles_are_per_tenant(self, server):
        attach(server, "alice")
        attach(server, "bob")
        fatbin = build_fatbin(saxpy_module(), "lib", "11.7")
        alice_handles, _ = server.register_fatbin("alice", fatbin)
        with pytest.raises(LaunchError):
            server.launch_kernel("bob", alice_handles["saxpy"],
                                 (1, 1, 1), (1, 1, 1),
                                 [0, 0, 1.0, 0])

    def test_launch_cost_matches_table5(self, server):
        """lookup + augment + syscall cycles per launch (Table 5)."""
        attach(server, "alice")
        handles, _ = server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        buf, _ = server.malloc("alice", 512)
        _, cycles = server.launch_kernel(
            "alice", handles["saxpy"], (1, 1, 1), (32, 1, 1),
            [buf, buf + 256, 1.0, 32])
        expected = (server.costs.lookup + server.costs.augment
                    + server.costs.launch_syscall)
        assert cycles == expected

    def test_noprot_mode_skips_augment(self, device):
        server = GuardianServer(device, FencingMode.NONE)
        attach(server, "alice")
        handles, _ = server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        buf, _ = server.malloc("alice", 512)
        _, cycles = server.launch_kernel(
            "alice", handles["saxpy"], (1, 1, 1), (32, 1, 1),
            [buf, buf + 256, 1.0, 32])
        assert cycles == (server.costs.lookup
                          + server.costs.launch_syscall)
        assert server.stats.native_launches == 1


class TestDetachAndSynchronize:
    def test_detach_destroys_tenant_stream(self, device, server):
        attach(server, "alice")
        stream = server._tenants["alice"].stream
        context = server.context
        assert stream in context.streams
        server.detach("alice")
        assert stream not in context.streams
        assert server.stats.streams_destroyed == 1

    def test_detach_drops_function_handles(self, server):
        attach(server, "alice")
        server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        tenant = server._tenants["alice"]
        assert tenant.functions
        server.detach("alice")
        assert not tenant.functions
        assert not tenant.patch_reports

    def test_detach_unknown_app_is_a_noop(self, server):
        server.detach("ghost")  # must not raise
        assert server.stats.streams_destroyed == 0

    def test_synchronize_requires_attached_tenant(self, server):
        with pytest.raises(GuardianError):
            server.synchronize("ghost")

    def test_synchronize_drains_the_tenants_stream(self, server, device):
        attach(server, "alice")
        buf, _ = server.malloc("alice", 256)
        server.memcpy_h2d("alice", buf, b"x" * 256)
        server.memcpy_h2d("alice", buf, b"y" * 256)
        server.synchronize("alice")
        assert server.stats.syncs == 1
        assert server.stats.sync_drained_tasks == 2

    def test_synchronize_counts_only_own_stream(self, server):
        attach(server, "alice")
        attach(server, "bob")
        alice_buf, _ = server.malloc("alice", 256)
        bob_buf, _ = server.malloc("bob", 256)
        server.memcpy_h2d("alice", alice_buf, b"x" * 256)
        server.memcpy_h2d("bob", bob_buf, b"y" * 256)
        server.synchronize("alice")
        assert server.stats.sync_drained_tasks == 1


class TestStandaloneNativeOptimisation:
    """'When the gSafeServer detects that an application runs
    standalone, it issues a native kernel' (§4.2.3)."""

    def test_standalone_uses_native(self, device):
        server = GuardianServer(device, FencingMode.BITWISE,
                                standalone_native=True)
        attach(server, "alice")
        handles, _ = server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        buf, _ = server.malloc("alice", 512)
        server.launch_kernel("alice", handles["saxpy"],
                             (1, 1, 1), (32, 1, 1),
                             [buf, buf + 256, 1.0, 32])
        assert server.stats.native_launches == 1

    def test_second_tenant_switches_to_sandboxed(self, device):
        server = GuardianServer(device, FencingMode.BITWISE,
                                standalone_native=True)
        attach(server, "alice")
        handles, _ = server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        buf, _ = server.malloc("alice", 512)
        attach(server, "bob")  # no longer standalone
        server.launch_kernel("alice", handles["saxpy"],
                             (1, 1, 1), (32, 1, 1),
                             [buf, buf + 256, 1.0, 32])
        assert server.stats.native_launches == 0


class TestModuleGlobalsPlacement:
    def test_globals_live_inside_tenant_partition(self, server):
        ptx = (
            ".version 7.5\n.target sm_86\n.address_size 64\n"
            ".global .align 4 .f32 weights[16];\n"
            ".visible .entry k()\n{\n.reg .b64 %rd<2>;\n"
            "mov.u64 %rd1, weights;\nret;\n}"
        )
        record = attach(server, "alice")
        server.load_module_ptx("alice", ptx)
        # The partition heap gained the global array.
        partition = server.allocator.partition("alice")
        assert partition.heap.bytes_in_use >= 64


class TestQuarantineIdempotency:
    def test_second_quarantine_is_noop(self, server):
        attach(server, "alice")
        first = server.quarantine("alice", reason="supervisor")
        second = server.quarantine("alice", reason="cluster drain")
        assert first == 1 << 20
        assert second == 0
        assert server.stats.tenants_quarantined == 1
        assert server.stats.bytes_scrubbed == 1 << 20

    def test_unknown_tenant_is_noop(self, server):
        assert server.quarantine("ghost") == 0
        assert server.stats.tenants_quarantined == 0

    def test_stale_incarnation_spares_the_newcomer(self, server):
        """A quarantine decision made against an earlier attach must
        not evict the new instance that reused the name."""
        attach(server, "alice")
        observed = server._tenants["alice"].incarnation
        server.detach("alice")
        attach(server, "alice")  # a new instance takes the name
        assert server.quarantine("alice", incarnation=observed) == 0
        assert server.tenant_count == 1
        assert server.stats.tenants_quarantined == 0

    def test_current_incarnation_is_honoured(self, server):
        attach(server, "alice")
        current = server._tenants["alice"].incarnation
        assert server.quarantine("alice", incarnation=current) == 1 << 20
        assert server.tenant_count == 0

    def test_incarnations_are_monotone(self, server):
        attach(server, "alice")
        first = server._tenants["alice"].incarnation
        server.detach("alice")
        attach(server, "alice")
        assert server._tenants["alice"].incarnation > first


class TestSnapshotRestore:
    def test_snapshot_is_readonly(self, server):
        attach(server, "alice")
        buf, _ = server.malloc("alice", 4096)
        server.memcpy_h2d("alice", buf, b"\xcd" * 4096)
        snapshot = server.snapshot_tenant("alice")
        assert snapshot.size == 1 << 20
        assert len(snapshot.data) == snapshot.size
        # Tenant still fully attached and serving.
        data, _ = server.memcpy_d2h("alice", buf, 4096)
        assert data == b"\xcd" * 4096

    def test_restore_on_fresh_server(self, server, device):
        attach(server, "alice")
        buf, _ = server.malloc("alice", 4096)
        server.memcpy_h2d("alice", buf, b"\xcd" * 4096)
        snapshot = server.snapshot_tenant("alice")
        peer = GuardianServer(Device(QUADRO_RTX_A4000),
                              FencingMode.BITWISE)
        new_base = peer.restore_tenant(snapshot)
        offset = buf - snapshot.source_base
        data, _ = peer.memcpy_d2h("alice", new_base + offset, 4096)
        assert data == b"\xcd" * 4096
        # Heap state travelled: the next malloc does not overlap.
        fresh, _ = peer.malloc("alice", 4096)
        assert fresh != new_base + offset

    def test_restore_refuses_mode_mismatch(self, server):
        attach(server, "alice")
        snapshot = server.snapshot_tenant("alice")
        peer = GuardianServer(Device(QUADRO_RTX_A4000),
                              FencingMode.CHECKING)
        from repro.errors import MigrationError
        with pytest.raises(MigrationError, match="fenced"):
            peer.restore_tenant(snapshot)

    def test_restore_refuses_double_attach(self, server):
        attach(server, "alice")
        snapshot = server.snapshot_tenant("alice")
        from repro.errors import MigrationError
        with pytest.raises(MigrationError, match="already attached"):
            server.restore_tenant(snapshot)
