"""Hot-path caching: the patch cache, extract memo and launch fast path.

These are this repo's beyond-the-paper optimisations; everything is
off by default (see ``test_cycle_accounting`` for the proof that the
stock server still matches Table 5 bit-for-bit).
"""

import pytest

from repro.errors import PatcherError
from repro.core.patcher import PatchCache, PTXPatcher
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer, ServerConfig
from repro.driver.fatbin import build_fatbin
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.ptx.emitter import emit_module

from tests.conftest import attack_module, saxpy_module


@pytest.fixture
def device():
    return Device(QUADRO_RTX_A4000)


def make_server(device, **config_overrides):
    config = ServerConfig.hotpath(**config_overrides)
    return GuardianServer(device, FencingMode.BITWISE, config=config)


SAXPY_TEXT = emit_module(saxpy_module())
ATTACK_TEXT = emit_module(attack_module())


class TestPatchCacheUnit:
    def patch(self, text, mode=FencingMode.BITWISE):
        return PTXPatcher(mode).patch_text(text)

    def test_content_addressed_hit(self):
        cache = PatchCache()
        patched, reports = self.patch(SAXPY_TEXT)
        cache.put(SAXPY_TEXT, FencingMode.BITWISE, patched, reports)
        # Probing with an equal-content but distinct string object hits.
        probe = SAXPY_TEXT[:10] + SAXPY_TEXT[10:]
        entry = cache.get(probe, FencingMode.BITWISE)
        assert entry is not None
        assert entry[0] == patched
        assert entry[1] is reports  # shared by reference

    def test_mode_is_part_of_the_key(self):
        cache = PatchCache()
        patched, reports = self.patch(SAXPY_TEXT)
        cache.put(SAXPY_TEXT, FencingMode.BITWISE, patched, reports)
        assert cache.get(SAXPY_TEXT, FencingMode.MODULO) is None

    def test_lru_eviction_order(self):
        cache = PatchCache(capacity=2)
        texts = [SAXPY_TEXT, ATTACK_TEXT,
                 SAXPY_TEXT.replace("saxpy", "saxpy2")]
        patched = {
            text: self.patch(text) for text in texts
        }
        assert cache.put(texts[0], FencingMode.BITWISE,
                         *patched[texts[0]]) == 0
        assert cache.put(texts[1], FencingMode.BITWISE,
                         *patched[texts[1]]) == 0
        # Touch texts[0] so texts[1] becomes least recently used.
        assert cache.get(texts[0], FencingMode.BITWISE) is not None
        assert cache.put(texts[2], FencingMode.BITWISE,
                         *patched[texts[2]]) == 1
        assert cache.get(texts[1], FencingMode.BITWISE) is None
        assert cache.get(texts[0], FencingMode.BITWISE) is not None
        assert len(cache) == 2

    def test_zero_capacity_caches_nothing(self):
        cache = PatchCache(capacity=0)
        patched, reports = self.patch(SAXPY_TEXT)
        assert cache.put(SAXPY_TEXT, FencingMode.BITWISE,
                         patched, reports) == 0
        assert cache.get(SAXPY_TEXT, FencingMode.BITWISE) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(PatcherError):
            PatchCache(capacity=-1)


class TestSharedPatchCache:
    def test_two_tenants_same_ptx_share_one_entry(self, device):
        """Identical library PTX is patched once, but each tenant's
        launches carry its *own* partition bounds."""
        server = make_server(device)
        server.attach("alice", 1 << 20)
        server.attach("bob", 1 << 20)
        fatbin = build_fatbin(saxpy_module(), "libsaxpy", "11.7")
        alice_handles, _ = server.register_fatbin("alice", fatbin)
        bob_handles, _ = server.register_fatbin(
            "bob", build_fatbin(saxpy_module(), "libsaxpy", "11.7"))
        assert server.stats.patch_cache_misses == 1
        assert server.stats.patch_cache_hits == 1

        captured = []
        original = server.driver.cuLaunchKernel

        def spy(function, grid, block, params, stream, **kwargs):
            captured.append(list(params))
            return original(function, grid, block, params, stream,
                            **kwargs)

        server.driver.cuLaunchKernel = spy
        for app_id, handles in (("alice", alice_handles),
                                ("bob", bob_handles)):
            buf, _ = server.malloc(app_id, 256)
            server.launch_kernel(app_id, handles["saxpy"],
                                 (1, 1, 1), (32, 1, 1),
                                 [buf, buf, 2.0, 0])
        alice_record = server.allocator.bounds.lookup("alice")
        bob_record = server.allocator.bounds.lookup("bob")
        assert captured[0][-2:] == alice_record.extra_param_values(
            FencingMode.BITWISE)
        assert captured[1][-2:] == bob_record.extra_param_values(
            FencingMode.BITWISE)
        assert captured[0][-2:] != captured[1][-2:]

    def test_extract_memo_hits_on_identical_fatbin_content(self, device):
        server = make_server(device)
        server.attach("alice", 1 << 20)
        server.attach("bob", 1 << 20)
        # Distinct FatBinary objects, byte-identical content.
        server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        server.register_fatbin(
            "bob", build_fatbin(saxpy_module(), "lib", "11.7"))
        assert server.stats.extract_cache_misses == 1
        assert server.stats.extract_cache_hits == 1

    def test_disabled_cache_counts_nothing(self, device):
        server = GuardianServer(device, FencingMode.BITWISE)
        server.attach("alice", 1 << 20)
        server.register_fatbin(
            "alice", build_fatbin(saxpy_module(), "lib", "11.7"))
        assert server.stats.patch_cache_hits == 0
        assert server.stats.patch_cache_misses == 0
        assert server.stats.extract_cache_hits == 0
        assert server.stats.extract_cache_misses == 0


class TestLaunchFastPath:
    def deploy(self, server, app_id="alice", size=1 << 20):
        server.attach(app_id, size)
        handles, _ = server.register_fatbin(
            app_id, build_fatbin(saxpy_module(), "lib", "11.7"))
        buf, _ = server.malloc(app_id, 256)
        return handles["saxpy"], buf

    def launch(self, server, handle, buf, app_id="alice"):
        server.launch_kernel(app_id, handle, (1, 1, 1), (32, 1, 1),
                             [buf, buf, 2.0, 0])

    def test_steady_state_hits_after_first_miss(self, device):
        server = make_server(device)
        handle, buf = self.deploy(server)
        for _ in range(5):
            self.launch(server, handle, buf)
        assert server.stats.fastpath_misses == 1
        assert server.stats.fastpath_hits == 4

    def test_steady_state_launch_cost(self, device):
        server = make_server(device)
        handle, buf = self.deploy(server)
        self.launch(server, handle, buf)  # populate the memo
        before = server.stats.cycles
        self.launch(server, handle, buf)
        assert server.stats.cycles - before == (
            server.costs.lookup_cached + server.costs.launch_syscall
        )

    def test_grow_partition_invalidates_the_memo(self, device):
        """After in-place growth the very next launch must carry the
        widened mask — the epoch check forces a rebuild."""
        server = make_server(device)
        handle, buf = self.deploy(server)
        self.launch(server, handle, buf)
        old_params = server.allocator.bounds.lookup(
            "alice").extra_param_values(FencingMode.BITWISE)

        server.grow_partition("alice", 2 << 20)

        captured = []
        original = server.driver.cuLaunchKernel

        def spy(function, grid, block, params, stream, **kwargs):
            captured.append(list(params))
            return original(function, grid, block, params, stream,
                            **kwargs)

        server.driver.cuLaunchKernel = spy
        misses_before = server.stats.fastpath_misses
        self.launch(server, handle, buf)
        new_params = server.allocator.bounds.lookup(
            "alice").extra_param_values(FencingMode.BITWISE)
        assert captured[0][-2:] == new_params
        assert new_params != old_params  # mask actually widened
        assert server.stats.fastpath_misses == misses_before + 1
        # And the rebuilt memo serves hits again.
        hits_before = server.stats.fastpath_hits
        self.launch(server, handle, buf)
        assert server.stats.fastpath_hits == hits_before + 1

    def test_reattach_does_not_see_stale_params(self, device):
        """Detach + re-attach gets a fresh tenant; its first launch
        rebuilds from the *new* partition record."""
        server = make_server(device)
        handle, buf = self.deploy(server)
        self.launch(server, handle, buf)
        server.detach("alice")
        handle, buf = self.deploy(server, size=2 << 20)
        captured = []
        original = server.driver.cuLaunchKernel

        def spy(function, grid, block, params, stream, **kwargs):
            captured.append(list(params))
            return original(function, grid, block, params, stream,
                            **kwargs)

        server.driver.cuLaunchKernel = spy
        self.launch(server, handle, buf)
        record = server.allocator.bounds.lookup("alice")
        assert captured[0][-2:] == record.extra_param_values(
            FencingMode.BITWISE)
