"""Partition bounds table tests (paper §4.2.1)."""

import pytest

from repro.errors import PartitionError
from repro.core.bounds_table import PartitionBoundsTable
from repro.core.policy import FencingMode

BASE = 0x7F_A000_0000_00


class TestRecords:
    def test_register_and_lookup(self):
        table = PartitionBoundsTable()
        record = table.register("alice", BASE, 1 << 20)
        assert table.lookup("alice") is record
        assert record.end == BASE + (1 << 20)
        assert record.mask == (1 << 20) - 1

    def test_duplicate_rejected(self):
        table = PartitionBoundsTable()
        table.register("alice", BASE, 1 << 20)
        with pytest.raises(PartitionError):
            table.register("alice", BASE + (1 << 20), 1 << 20)

    def test_unknown_app(self):
        table = PartitionBoundsTable()
        with pytest.raises(PartitionError):
            table.lookup("ghost")

    def test_misaligned_pow2_rejected(self):
        table = PartitionBoundsTable()
        with pytest.raises(PartitionError):
            table.register("a", BASE + 512, 1 << 20)

    def test_arbitrary_size_allowed(self):
        # Modulo/checking partitions need not be powers of two.
        table = PartitionBoundsTable()
        record = table.register("a", BASE, 3_000_000)
        assert record.size == 3_000_000

    def test_remove(self):
        table = PartitionBoundsTable()
        table.register("a", BASE, 1 << 20)
        table.remove("a")
        assert "a" not in table
        assert len(table) == 0

    def test_contains_range(self):
        table = PartitionBoundsTable()
        record = table.register("a", BASE, 4096)
        assert record.contains(BASE, 4096)
        assert record.contains(BASE + 4095, 1)
        assert not record.contains(BASE + 4095, 2)
        assert not record.contains(BASE - 1, 1)

    def test_owner_of(self):
        table = PartitionBoundsTable()
        table.register("a", BASE, 4096)
        table.register("b", BASE + 4096, 4096)
        assert table.owner_of(BASE + 100) == "a"
        assert table.owner_of(BASE + 5000) == "b"
        assert table.owner_of(BASE + 10_000) is None


class TestExtraParams:
    """The values the server appends at launch time (§4.2.3)."""

    def _record(self):
        table = PartitionBoundsTable()
        return table.register("a", BASE, 1 << 20)

    def test_bitwise_params(self):
        record = self._record()
        assert record.extra_param_values(FencingMode.BITWISE) == [
            BASE, (1 << 20) - 1,
        ]

    def test_modulo_params(self):
        record = self._record()
        base, size, magic = record.extra_param_values(FencingMode.MODULO)
        assert (base, size) == (BASE, 1 << 20)
        assert magic == (1 << 64) // (1 << 20)

    def test_checking_params(self):
        record = self._record()
        assert record.extra_param_values(FencingMode.CHECKING) == [
            BASE, BASE + (1 << 20),
        ]

    def test_none_has_no_params(self):
        record = self._record()
        assert record.extra_param_values(FencingMode.NONE) == []

    def test_param_order_matches_mode_declaration(self):
        record = self._record()
        for mode in FencingMode:
            values = record.extra_param_values(mode)
            assert len(values) == len(mode.extra_params)
