"""Partition bounds table tests (paper §4.2.1)."""

import pytest

from repro.errors import PartitionError
from repro.core.bounds_table import PartitionBoundsTable
from repro.core.policy import FencingMode

BASE = 0x7F_A000_0000_00


class TestRecords:
    def test_register_and_lookup(self):
        table = PartitionBoundsTable()
        record = table.register("alice", BASE, 1 << 20)
        assert table.lookup("alice") is record
        assert record.end == BASE + (1 << 20)
        assert record.mask == (1 << 20) - 1

    def test_duplicate_rejected(self):
        table = PartitionBoundsTable()
        table.register("alice", BASE, 1 << 20)
        with pytest.raises(PartitionError):
            table.register("alice", BASE + (1 << 20), 1 << 20)

    def test_unknown_app(self):
        table = PartitionBoundsTable()
        with pytest.raises(PartitionError):
            table.lookup("ghost")

    def test_misaligned_pow2_rejected(self):
        table = PartitionBoundsTable()
        with pytest.raises(PartitionError):
            table.register("a", BASE + 512, 1 << 20)

    def test_arbitrary_size_allowed(self):
        # Modulo/checking partitions need not be powers of two.
        table = PartitionBoundsTable()
        record = table.register("a", BASE, 3_000_000)
        assert record.size == 3_000_000

    def test_remove(self):
        table = PartitionBoundsTable()
        table.register("a", BASE, 1 << 20)
        table.remove("a")
        assert "a" not in table
        assert len(table) == 0

    def test_contains_range(self):
        table = PartitionBoundsTable()
        record = table.register("a", BASE, 4096)
        assert record.contains(BASE, 4096)
        assert record.contains(BASE + 4095, 1)
        assert not record.contains(BASE + 4095, 2)
        assert not record.contains(BASE - 1, 1)

    def test_owner_of(self):
        table = PartitionBoundsTable()
        table.register("a", BASE, 4096)
        table.register("b", BASE + 4096, 4096)
        assert table.owner_of(BASE + 100) == "a"
        assert table.owner_of(BASE + 5000) == "b"
        assert table.owner_of(BASE + 10_000) is None


class TestExtraParams:
    """The values the server appends at launch time (§4.2.3)."""

    def _record(self):
        table = PartitionBoundsTable()
        return table.register("a", BASE, 1 << 20)

    def test_bitwise_params(self):
        record = self._record()
        assert record.extra_param_values(FencingMode.BITWISE) == [
            BASE, (1 << 20) - 1,
        ]

    def test_modulo_params(self):
        record = self._record()
        base, size, magic = record.extra_param_values(FencingMode.MODULO)
        assert (base, size) == (BASE, 1 << 20)
        assert magic == (1 << 64) // (1 << 20)

    def test_checking_params(self):
        record = self._record()
        assert record.extra_param_values(FencingMode.CHECKING) == [
            BASE, BASE + (1 << 20),
        ]

    def test_none_has_no_params(self):
        record = self._record()
        assert record.extra_param_values(FencingMode.NONE) == []

    def test_param_order_matches_mode_declaration(self):
        record = self._record()
        for mode in FencingMode:
            values = record.extra_param_values(mode)
            assert len(values) == len(mode.extra_params)


class TestVectorizedContainment:
    """``contains_batch`` is the trace prologue's one-shot numpy sweep;
    it must agree with the scalar ``contains`` on every range."""

    def _record(self):
        table = PartitionBoundsTable()
        return table.register("alice", BASE, 1 << 20)

    def test_batch_agrees_with_scalar(self):
        import numpy as np

        record = self._record()
        ranges = [
            (BASE, 1),                      # first byte
            (BASE, 1 << 20),                # whole partition
            (BASE + (1 << 20) - 1, 1),      # last byte
            (BASE + 4096, 256),             # interior
        ]
        starts = np.array([s for s, _ in ranges], dtype=np.int64)
        sizes = np.array([n for _, n in ranges], dtype=np.int64)
        assert record.contains_all(ranges)
        assert record.contains_batch(starts, sizes)

    def test_batch_rejects_any_violation(self):
        import numpy as np

        record = self._record()
        bad_ranges = [
            [(BASE, 256), (BASE - 1, 1)],             # below base
            [(BASE, 256), (BASE + (1 << 20), 1)],     # past the end
            [(BASE, 256), (BASE + (1 << 20) - 1, 2)], # straddles end
            [(BASE, 256), (BASE + 16, -1)],           # negative length
        ]
        for ranges in bad_ranges:
            starts = np.array([s for s, _ in ranges], dtype=np.int64)
            sizes = np.array([n for _, n in ranges], dtype=np.int64)
            assert not record.contains_all(ranges)
            assert not record.contains_batch(starts, sizes)
