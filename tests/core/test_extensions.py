"""Tests for the implemented paper extensions.

1. **Dynamic partition resizing** — the paper's stated future work
   (§4.2.1): in-place buddy growth that keeps tenant pointers valid.
2. **Runaway-kernel termination** — the TReM integration the paper
   references (§4.3, [53]): the server kills endless kernels and the
   failure stays contained to the offending tenant.
"""

import numpy as np
import pytest

from repro import FencingMode, GuardianSystem
from repro.errors import GuardianError, PartitionError
from repro.core.allocator import GuardianAllocator
from repro.driver.fatbin import build_fatbin
from repro.ptx.builder import KernelBuilder, build_module

from tests.conftest import saxpy_module

BASE = 0x7F_A000_0000_00


class TestGrowPartitionAllocator:
    def test_grow_doubles_in_place(self):
        allocator = GuardianAllocator(BASE, 1 << 30)
        original = allocator.create_partition("a", 1 << 20)
        grown = allocator.grow_partition("a", 3 << 20)
        assert grown.base == original.base
        assert grown.size == 4 << 20
        record = allocator.bounds.lookup("a")
        assert record.size == 4 << 20
        assert record.mask == (4 << 20) - 1

    def test_grow_noop_when_smaller(self):
        allocator = GuardianAllocator(BASE, 1 << 30)
        allocator.create_partition("a", 1 << 20)
        grown = allocator.grow_partition("a", 1 << 18)
        assert grown.size == 1 << 20

    def test_existing_allocations_survive(self):
        allocator = GuardianAllocator(BASE, 1 << 30)
        allocator.create_partition("a", 1 << 20)
        pointer = allocator.malloc("a", 4096)
        allocator.grow_partition("a", 2 << 20)
        record = allocator.bounds.lookup("a")
        assert record.contains(pointer, 4096)
        # The old allocation is still owned and freeable.
        allocator.free("a", pointer)

    def test_new_space_usable(self):
        allocator = GuardianAllocator(BASE, 1 << 30)
        allocator.create_partition("a", 1 << 20)
        with pytest.raises(Exception):
            allocator.malloc("a", (1 << 20) + 4096)
        allocator.grow_partition("a", 2 << 20)
        pointer = allocator.malloc("a", (1 << 20) + 4096)
        assert allocator.bounds.lookup("a").contains(
            pointer, (1 << 20) + 4096)

    def test_occupied_buddy_blocks_growth(self):
        allocator = GuardianAllocator(BASE, 1 << 30)
        allocator.create_partition("a", 1 << 20)
        # b lands exactly in a's buddy slot.
        b = allocator.create_partition("b", 1 << 20)
        assert b.base == BASE + (1 << 20)
        with pytest.raises(PartitionError, match="buddy"):
            allocator.grow_partition("a", 2 << 20)

    def test_high_buddy_cannot_grow_in_place(self):
        allocator = GuardianAllocator(BASE, 1 << 30)
        allocator.create_partition("a", 1 << 20)
        allocator.create_partition("b", 1 << 20)
        allocator.release_partition("a")
        # b sits at BASE + 1MB: the *high* buddy of its pair.
        with pytest.raises(PartitionError, match="high buddy"):
            allocator.grow_partition("b", 2 << 20)

    def test_multi_doubling(self):
        allocator = GuardianAllocator(BASE, 1 << 30)
        allocator.create_partition("a", 1 << 20)
        grown = allocator.grow_partition("a", 7 << 20)
        assert grown.size == 8 << 20
        assert grown.base == BASE


class TestGrowPartitionEndToEnd:
    def test_pointers_survive_and_fencing_widens(self):
        system = GuardianSystem(mode=FencingMode.BITWISE)
        tenant = system.attach("app", 1 << 20)
        data = np.arange(64, dtype=np.float32)
        pointer = tenant.runtime.cudaMalloc(256)
        tenant.runtime.cudaMemcpyH2D(pointer, data.tobytes())

        new_size = tenant.client.grow_partition(2 << 20)
        assert new_size == 2 << 20
        # Old pointer still works end to end.
        out = np.frombuffer(tenant.runtime.cudaMemcpyD2H(pointer, 256),
                            dtype=np.float32)
        assert np.array_equal(out, data)
        # New space is allocatable and a sandboxed kernel can use it.
        big = tenant.runtime.cudaMalloc((1 << 20) + 4096)
        handles = tenant.runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        tenant.runtime.cudaMemcpyH2D(
            big, np.ones(64, dtype=np.float32).tobytes())
        tenant.runtime.cudaLaunchKernel(
            handles["saxpy"], (1, 1, 1), (64, 1, 1),
            [big, pointer, 2.0, 64])
        result = np.frombuffer(tenant.runtime.cudaMemcpyD2H(big, 256),
                               dtype=np.float32)
        assert np.allclose(result, 2.0 * data + 1.0)

    def test_growth_blocked_by_neighbour_tenant(self):
        system = GuardianSystem()
        alice = system.attach("alice", 1 << 20)
        system.attach("bob", 1 << 20)  # occupies alice's buddy
        with pytest.raises(PartitionError):
            alice.client.grow_partition(2 << 20)

    def test_isolation_after_growth(self):
        """The widened mask must still not reach a third tenant."""
        from tests.conftest import attack_module, make_guardian_tenant

        system = GuardianSystem()
        alice = system.attach("alice", 1 << 20)
        alice.client.grow_partition(2 << 20)  # buddy free: grows
        victim = system.attach("victim", 1 << 20)
        secret_buf = victim.runtime.cudaMalloc(64)
        victim.runtime.cudaMemcpyH2D(secret_buf, b"\x77" * 64)

        handles = alice.runtime.registerFatBinary(
            build_fatbin(attack_module(), "attack", "11.7"))
        mine = alice.runtime.cudaMalloc(64)
        alice.runtime.cudaLaunchKernel(
            handles["writer"], (1, 1, 1), (1, 1, 1),
            [mine, secret_buf - mine, 0xEE])
        assert victim.runtime.cudaMemcpyD2H(secret_buf, 64) == (
            b"\x77" * 64)


class TestRunawayTermination:
    def _spin_fatbin(self):
        b = KernelBuilder("spin", params=[])
        forever = b.fresh_label("forever")
        b.label(forever)
        b.bra(forever)
        return build_fatbin(build_module([b.build()]), "spin", "11.7")

    def test_endless_kernel_killed_and_reported(self):
        system = GuardianSystem()
        tenant = system.attach("app", 1 << 20)
        handles = tenant.runtime.registerFatBinary(self._spin_fatbin())
        with pytest.raises(GuardianError, match="terminated"):
            tenant.runtime.cudaLaunchKernel(handles["spin"],
                                            (1, 1, 1), (1, 1, 1), [])
        assert system.server.stats.kernels_killed == 1

    def test_other_tenants_unaffected(self):
        system = GuardianSystem()
        spinner = system.attach("spinner", 1 << 20)
        worker = system.attach("worker", 1 << 20)
        handles = spinner.runtime.registerFatBinary(self._spin_fatbin())
        with pytest.raises(GuardianError):
            spinner.runtime.cudaLaunchKernel(handles["spin"],
                                             (1, 1, 1), (1, 1, 1), [])
        # The worker's path is fully functional afterwards.
        buffer = worker.runtime.cudaMalloc(64)
        worker.runtime.cudaMemcpyH2D(buffer, b"ok" * 32)
        assert worker.runtime.cudaMemcpyD2H(buffer, 64) == b"ok" * 32
