"""GuardianClient + IPC channel tests (paper §4.1, §4.2.4)."""

import pytest

from repro.errors import ChannelClosedError, GuardianError, IPCError
from repro.core.client import GuardianClient, preload_guardian
from repro.core.ipc import IPCChannel, IPCCostModel
from repro.core.policy import FencingMode
from repro.core.server import GuardianServer
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.runtime.api import CudaRuntime
from repro.runtime.interpose import LIBCUDA, DynamicLoader


@pytest.fixture
def server():
    return GuardianServer(Device(QUADRO_RTX_A4000), FencingMode.BITWISE)


class TestIPCChannel:
    class _Echo:
        def ping(self, app_id, value):
            return value * 2, 100

    def test_call_dispatch(self):
        channel = IPCChannel(self._Echo(), "app")
        assert channel.call("ping", 21) == 42

    def test_unknown_method(self):
        channel = IPCChannel(self._Echo(), "app")
        with pytest.raises(IPCError):
            channel.call("nonexistent")

    def test_closed_channel(self):
        channel = IPCChannel(self._Echo(), "app")
        channel.close()
        with pytest.raises(IPCError):
            channel.call("ping", 1)

    def test_call_after_close_raises_channel_closed(self):
        """The dead-client contract: a specific error type, not a hang
        or an AttributeError."""
        channel = IPCChannel(self._Echo(), "app")
        channel.close()
        with pytest.raises(ChannelClosedError, match="'app'"):
            channel.call("ping", 1)

    def test_close_is_idempotent(self):
        channel = IPCChannel(self._Echo(), "app", batching=True)
        channel.call("ping", 1, sync=False)
        assert channel.queued_calls == 1
        channel.close()
        channel.close()
        channel.close()
        assert channel.closed
        # The batch was delivered exactly once.
        assert channel.stats.batches == 1
        assert channel.stats.batched_messages == 1

    def test_close_marks_closed_even_when_flush_raises(self):
        class Exploder:
            def boom(self, app_id):
                raise GuardianError("server-side failure")

        channel = IPCChannel(Exploder(), "app", batching=True)
        channel.call("boom", sync=False)
        with pytest.raises(GuardianError):
            channel.close()
        assert channel.closed
        channel.close()  # second close: clean no-op
        with pytest.raises(ChannelClosedError):
            channel.call("boom", sync=False)

    def test_abort_discards_pending_batch(self):
        """A client that dies with a non-empty batch pending must not
        have that batch executed on its behalf."""
        delivered = []

        class Recorder:
            def op(self, app_id, value):
                delivered.append(value)
                return None, 10

        channel = IPCChannel(Recorder(), "app", batching=True, max_batch=64)
        channel.call("op", 1, sync=False)
        channel.call("op", 2, sync=False)
        assert channel.queued_calls == 2
        assert channel.abort() == 2
        assert delivered == []
        assert channel.stats.discarded_calls == 2
        assert channel.closed
        assert channel.abort() == 0  # idempotent too
        with pytest.raises(ChannelClosedError):
            channel.call("op", 3, sync=False)

    def test_sync_call_blocks_on_server(self):
        costs = IPCCostModel(roundtrip=1000, marshal=100)
        channel = IPCChannel(self._Echo(), "app", costs=costs)
        channel.call("ping", 1, sync=True)
        assert channel.stats.client_cycles == 1000 + 100 + 100

    def test_async_call_pays_send_half_only(self):
        costs = IPCCostModel(roundtrip=1000, marshal=100)
        channel = IPCChannel(self._Echo(), "app", costs=costs)
        channel.call("ping", 1, sync=False)
        assert channel.stats.client_cycles == 500 + 100
        assert channel.stats.server_cycles == 100

    def test_payload_cycles(self):
        costs = IPCCostModel(roundtrip=0, marshal=0, bytes_per_cycle=8)
        channel = IPCChannel(self._Echo(), "app", costs=costs)
        channel.call("ping", 1, payload_bytes=800)
        assert channel.stats.client_cycles == pytest.approx(100 + 100)
        assert channel.stats.payload_bytes == 800


class TestGuardianClient:
    def test_attach_on_construction(self, server):
        GuardianClient(server, "alice", 1 << 20)
        assert server.tenant_count == 1

    def test_backend_interface_complete(self, server):
        """The shim must satisfy the whole driver-level surface, or a
        library call would hit the real driver mid-run."""
        from repro.runtime.backend import GpuBackend

        client = GuardianClient(server, "alice", 1 << 20)
        assert isinstance(client, GpuBackend)

    def test_malloc_free_through_ipc(self, server):
        client = GuardianClient(server, "alice", 1 << 20)
        address = client.malloc(4096)
        record = server.allocator.bounds.lookup("alice")
        assert record.contains(address, 4096)
        client.free(address)

    def test_close_detaches(self, server):
        client = GuardianClient(server, "alice", 1 << 20)
        client.close()
        assert server.tenant_count == 0
        with pytest.raises(IPCError):
            client.malloc(64)

    def test_overhead_accumulates(self, server):
        client = GuardianClient(server, "alice", 1 << 20)
        before = client.profile.cycles
        client.malloc(64)
        assert client.profile.cycles > before

    def test_device_spec_cached(self, server):
        client = GuardianClient(server, "alice", 1 << 20)
        first = client.device_spec()
        messages = client.channel.stats.messages
        second = client.device_spec()
        assert first is second
        assert client.channel.stats.messages == messages

    def test_unknown_export_table(self, server):
        client = GuardianClient(server, "alice", 1 << 20)
        with pytest.raises(GuardianError, match="minimal"):
            client.get_export_table("bogus-uuid")


class TestPreload:
    def test_preload_interposes_runtime(self, server):
        loader = DynamicLoader()
        client = preload_guardian(loader, server, "alice", 1 << 20)
        runtime = CudaRuntime(loader)
        assert runtime.backend is client

    def test_runtime_calls_reach_server(self, server):
        loader = DynamicLoader()
        preload_guardian(loader, server, "alice", 1 << 20)
        runtime = CudaRuntime(loader)
        address = runtime.cudaMalloc(1024)
        record = server.allocator.bounds.lookup("alice")
        assert record.contains(address, 1024)

    def test_dlopen_returns_shim(self, server):
        """Libraries dlopen()ing the driver get the shim — the hook of
        §4.1."""
        loader = DynamicLoader()
        client = preload_guardian(loader, server, "alice", 1 << 20)
        assert loader.dlopen(LIBCUDA) is client
        assert loader.resolutions[-1] == (LIBCUDA, True)
