"""Guardian partition allocator tests (paper §4.2.1)."""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, PartitionError
from repro.core.allocator import GuardianAllocator, _Gap
from repro.core.masks import is_power_of_two

BASE = 0x7F_A000_0000_00
TOTAL = 1 << 30


def make_allocator(require_pow2=True):
    return GuardianAllocator(BASE, TOTAL,
                             require_power_of_two=require_pow2)


class TestPartitionCarving:
    def test_rounded_to_power_of_two(self):
        allocator = make_allocator()
        partition = allocator.create_partition("a", 3_000_000)
        assert is_power_of_two(partition.size)
        assert partition.size >= 3_000_000

    def test_size_aligned(self):
        allocator = make_allocator()
        for index, request in enumerate((1 << 20, 1 << 22, 1 << 19)):
            partition = allocator.create_partition(str(index), request)
            assert partition.base % partition.size == 0

    def test_partitions_disjoint(self):
        allocator = make_allocator()
        partitions = [
            allocator.create_partition(str(i), 1 << 20) for i in range(8)
        ]
        spans = sorted((p.base, p.base + p.size) for p in partitions)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_duplicate_app_rejected(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        with pytest.raises(PartitionError):
            allocator.create_partition("a", 1 << 20)

    def test_capacity_exhaustion(self):
        allocator = make_allocator()
        allocator.create_partition("a", TOTAL // 2)
        allocator.create_partition("b", TOTAL // 2)
        with pytest.raises(PartitionError):
            allocator.create_partition("c", 1 << 20)

    def test_release_and_reuse(self):
        allocator = make_allocator()
        first = allocator.create_partition("a", TOTAL)
        allocator.release_partition("a")
        second = allocator.create_partition("b", TOTAL)
        assert second.base == first.base

    def test_bounds_table_in_sync(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        record = allocator.bounds.lookup("a")
        assert record.base == allocator.partition("a").base
        allocator.release_partition("a")
        assert "a" not in allocator.bounds

    def test_arbitrary_sizes_when_allowed(self):
        allocator = make_allocator(require_pow2=False)
        partition = allocator.create_partition("a", 3_000_000)
        assert partition.size == 3_000_000


class TestTenantAllocation:
    def test_malloc_inside_partition(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        record = allocator.bounds.lookup("a")
        for _ in range(10):
            address = allocator.malloc("a", 1000)
            assert record.contains(address, 1000)

    def test_malloc_bounded_by_partition(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        with pytest.raises(AllocationError, match="partition"):
            allocator.malloc("a", (1 << 20) + 1)

    def test_free_ownership_checked(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        allocator.create_partition("b", 1 << 20)
        address = allocator.malloc("a", 1000)
        with pytest.raises(AllocationError, match="outside"):
            allocator.free("b", address)

    def test_free_and_reuse_within_partition(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        address = allocator.malloc("a", 1 << 20)
        allocator.free("a", address)
        assert allocator.malloc("a", 1 << 20) == address


class TestGapListScaling:
    """The free list stays start-sorted and bisect-maintained.

    The micro-bench pins the complexity class, not a wall-clock
    number: a 4x larger interleaved release churn may cost at most
    ~9x (near-linear lands around 4-5x; the old linear-scan +
    repeated-merge-pass implementation measured ~16x here).
    """

    @staticmethod
    def _gap_churn(n, size=4096):
        allocator = make_allocator(require_pow2=False)
        blocks = [allocator._take_aligned(size) for _ in range(n)]
        start = time.perf_counter()
        # Evens first: every insert lands between two live blocks, so
        # the gap list grows to n/2 entries with zero merges — the
        # worst case for insertion. The odds then stitch every gap
        # back together.
        for address in blocks[::2]:
            allocator._insert_gap(_Gap(address, size))
        for address in blocks[1::2]:
            allocator._insert_gap(_Gap(address, size))
        elapsed = time.perf_counter() - start
        return elapsed, allocator._gaps

    def test_interleaved_release_churn_scales_near_linearly(self):
        small = min(self._gap_churn(256)[0] for _ in range(5))
        big = min(self._gap_churn(1024)[0] for _ in range(5))
        assert big / small < 9.0, (
            f"gap-list churn scaled {big / small:.1f}x for 4x items "
            f"— quadratic insert/merge behaviour is back"
        )

    def test_interleaved_release_fully_coalesces(self):
        _, gaps = self._gap_churn(512)
        assert len(gaps) == 1
        assert gaps[0].start == BASE
        assert gaps[0].size == TOTAL

    def test_gap_list_stays_sorted_under_public_churn(self):
        allocator = make_allocator()
        names = [str(i) for i in range(64)]
        for name in names:
            allocator.create_partition(name, 1 << 16)
        for name in names[::2]:
            allocator.release_partition(name)
        starts = [gap.start for gap in allocator._gaps]
        assert starts == sorted(starts)
        for name in names[1::2]:
            allocator.release_partition(name)
        assert allocator.bytes_unpartitioned == TOTAL


class TestProperties:
    @given(
        requests=st.lists(
            st.integers(min_value=1, max_value=TOTAL // 8),
            min_size=1, max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_created_partitions_never_overlap(self, requests):
        allocator = make_allocator()
        created = []
        for index, request in enumerate(requests):
            try:
                created.append(
                    allocator.create_partition(str(index), request)
                )
            except PartitionError:
                continue
        for i, p in enumerate(created):
            assert p.base % p.size == 0
            assert BASE <= p.base
            assert p.base + p.size <= BASE + TOTAL
            for q in created[i + 1:]:
                assert (p.base + p.size <= q.base
                        or q.base + q.size <= p.base)

    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=65536),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_tenant_allocations_stay_inside(self, sizes):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 22)
        record = allocator.bounds.lookup("a")
        for size in sizes:
            try:
                address = allocator.malloc("a", size)
            except AllocationError:
                break
            assert record.contains(address, size)
