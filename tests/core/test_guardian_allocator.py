"""Guardian partition allocator tests (paper §4.2.1)."""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, PartitionError
from repro.core.allocator import GuardianAllocator, _Gap
from repro.core.masks import is_power_of_two

BASE = 0x7F_A000_0000_00
TOTAL = 1 << 30


def make_allocator(require_pow2=True):
    return GuardianAllocator(BASE, TOTAL,
                             require_power_of_two=require_pow2)


class TestPartitionCarving:
    def test_rounded_to_power_of_two(self):
        allocator = make_allocator()
        partition = allocator.create_partition("a", 3_000_000)
        assert is_power_of_two(partition.size)
        assert partition.size >= 3_000_000

    def test_size_aligned(self):
        allocator = make_allocator()
        for index, request in enumerate((1 << 20, 1 << 22, 1 << 19)):
            partition = allocator.create_partition(str(index), request)
            assert partition.base % partition.size == 0

    def test_partitions_disjoint(self):
        allocator = make_allocator()
        partitions = [
            allocator.create_partition(str(i), 1 << 20) for i in range(8)
        ]
        spans = sorted((p.base, p.base + p.size) for p in partitions)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_duplicate_app_rejected(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        with pytest.raises(PartitionError):
            allocator.create_partition("a", 1 << 20)

    def test_capacity_exhaustion(self):
        allocator = make_allocator()
        allocator.create_partition("a", TOTAL // 2)
        allocator.create_partition("b", TOTAL // 2)
        with pytest.raises(PartitionError):
            allocator.create_partition("c", 1 << 20)

    def test_release_and_reuse(self):
        allocator = make_allocator()
        first = allocator.create_partition("a", TOTAL)
        allocator.release_partition("a")
        second = allocator.create_partition("b", TOTAL)
        assert second.base == first.base

    def test_bounds_table_in_sync(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        record = allocator.bounds.lookup("a")
        assert record.base == allocator.partition("a").base
        allocator.release_partition("a")
        assert "a" not in allocator.bounds

    def test_arbitrary_sizes_when_allowed(self):
        allocator = make_allocator(require_pow2=False)
        partition = allocator.create_partition("a", 3_000_000)
        assert partition.size == 3_000_000


class TestTenantAllocation:
    def test_malloc_inside_partition(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        record = allocator.bounds.lookup("a")
        for _ in range(10):
            address = allocator.malloc("a", 1000)
            assert record.contains(address, 1000)

    def test_malloc_bounded_by_partition(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        with pytest.raises(AllocationError, match="partition"):
            allocator.malloc("a", (1 << 20) + 1)

    def test_free_ownership_checked(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        allocator.create_partition("b", 1 << 20)
        address = allocator.malloc("a", 1000)
        with pytest.raises(AllocationError, match="outside"):
            allocator.free("b", address)

    def test_free_and_reuse_within_partition(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        address = allocator.malloc("a", 1 << 20)
        allocator.free("a", address)
        assert allocator.malloc("a", 1 << 20) == address


class TestGapListScaling:
    """The free list stays start-sorted and bisect-maintained.

    The micro-bench pins the complexity class, not a wall-clock
    number: a 4x larger interleaved release churn may cost at most
    ~9x (near-linear lands around 4-5x; the old linear-scan +
    repeated-merge-pass implementation measured ~16x here).
    """

    @staticmethod
    def _gap_churn(n, size=4096):
        allocator = make_allocator(require_pow2=False)
        blocks = [allocator._take_aligned(size) for _ in range(n)]
        start = time.perf_counter()
        # Evens first: every insert lands between two live blocks, so
        # the gap list grows to n/2 entries with zero merges — the
        # worst case for insertion. The odds then stitch every gap
        # back together.
        for address in blocks[::2]:
            allocator._insert_gap(_Gap(address, size))
        for address in blocks[1::2]:
            allocator._insert_gap(_Gap(address, size))
        elapsed = time.perf_counter() - start
        return elapsed, allocator._gaps

    def test_interleaved_release_churn_scales_near_linearly(self):
        small = min(self._gap_churn(256)[0] for _ in range(5))
        big = min(self._gap_churn(1024)[0] for _ in range(5))
        assert big / small < 9.0, (
            f"gap-list churn scaled {big / small:.1f}x for 4x items "
            f"— quadratic insert/merge behaviour is back"
        )

    def test_interleaved_release_fully_coalesces(self):
        _, gaps = self._gap_churn(512)
        assert len(gaps) == 1
        assert gaps[0].start == BASE
        assert gaps[0].size == TOTAL

    def test_gap_list_stays_sorted_under_public_churn(self):
        allocator = make_allocator()
        names = [str(i) for i in range(64)]
        for name in names:
            allocator.create_partition(name, 1 << 16)
        for name in names[::2]:
            allocator.release_partition(name)
        starts = [gap.start for gap in allocator._gaps]
        assert starts == sorted(starts)
        for name in names[1::2]:
            allocator.release_partition(name)
        assert allocator.bytes_unpartitioned == TOTAL


class TestProperties:
    @given(
        requests=st.lists(
            st.integers(min_value=1, max_value=TOTAL // 8),
            min_size=1, max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_created_partitions_never_overlap(self, requests):
        allocator = make_allocator()
        created = []
        for index, request in enumerate(requests):
            try:
                created.append(
                    allocator.create_partition(str(index), request)
                )
            except PartitionError:
                continue
        for i, p in enumerate(created):
            assert p.base % p.size == 0
            assert BASE <= p.base
            assert p.base + p.size <= BASE + TOTAL
            for q in created[i + 1:]:
                assert (p.base + p.size <= q.base
                        or q.base + q.size <= p.base)

    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=65536),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_tenant_allocations_stay_inside(self, sizes):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 22)
        record = allocator.bounds.lookup("a")
        for size in sizes:
            try:
                address = allocator.malloc("a", size)
            except AllocationError:
                break
            assert record.contains(address, size)

class TestTakeExactScaling:
    """``_take_exact`` is a bisect probe, not a linear scan.

    Buddy growth repeatedly claims exact regions from the gap list;
    over a fragmented list the old linear scan made that quadratic.
    Same methodology as :class:`TestGapListScaling`: pin the
    complexity class with a min-of-5 ratio, not a wall-clock number.
    """

    @staticmethod
    def _exact_churn(n, size=4096):
        allocator = make_allocator(require_pow2=False)
        allocator._gaps.clear()
        starts = [BASE + i * 2 * size for i in range(n)]
        for start in starts:
            allocator._insert_gap(_Gap(start, size))
        begin = time.perf_counter()
        # Highest-first: a linear scan walks the whole surviving list
        # for every claim; the bisect probe lands in one hop.
        for start in reversed(starts):
            assert allocator._take_exact(start, size)
        elapsed = time.perf_counter() - begin
        return elapsed, allocator._gaps

    def test_exact_claims_scale_near_linearly(self):
        small = min(self._exact_churn(256)[0] for _ in range(5))
        big = min(self._exact_churn(1024)[0] for _ in range(5))
        assert big / small < 9.0, (
            f"_take_exact churn scaled {big / small:.1f}x for 4x gaps "
            f"— the linear containment scan is back"
        )

    def test_exact_claims_drain_the_list(self):
        _, gaps = self._exact_churn(128)
        assert gaps == []

    def test_partial_claims_split_correctly(self):
        allocator = make_allocator(require_pow2=False)
        assert allocator._take_exact(BASE + 4096, 4096)
        starts = [(gap.start, gap.size) for gap in allocator._gaps]
        assert starts == [(BASE, 4096),
                          (BASE + 8192, TOTAL - 8192)]
        assert not allocator._take_exact(BASE + 4096, 4096)


class TestGrowEdgeCases:
    def test_high_buddy_failure_leaves_state_untouched(self):
        allocator = make_allocator()
        allocator.create_partition("low", 1 << 20)
        allocator.create_partition("high", 1 << 20)
        # "high" sits at an odd multiple of its size: the high buddy.
        assert allocator.partition("high").base % (2 << 20) != 0
        gaps = [(g.start, g.size) for g in allocator._gaps]
        record = allocator.bounds.lookup("high")
        with pytest.raises(PartitionError, match="high buddy"):
            allocator.grow_partition("high", 2 << 20)
        assert [(g.start, g.size) for g in allocator._gaps] == gaps
        assert allocator.bounds.lookup("high") is record

    def test_occupied_buddy_failure_leaves_state_untouched(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        allocator.create_partition("b", 1 << 20)  # sits in a's buddy
        gaps = [(g.start, g.size) for g in allocator._gaps]
        with pytest.raises(PartitionError, match="not free"):
            allocator.grow_partition("a", 2 << 20)
        assert [(g.start, g.size) for g in allocator._gaps] == gaps
        assert allocator.partition("a").size == 1 << 20

    def test_midway_failure_rolls_back_absorbed_buddies(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)       # [0, 1M)
        allocator.create_partition("blocker", 1 << 20)  # [1M, 2M)
        allocator.release_partition("blocker")
        allocator.create_partition("wall", 2 << 20)     # [2M, 4M)
        # 1M -> 4M absorbs the free [1M, 2M) buddy, then hits "wall".
        free_before = allocator.bytes_unpartitioned
        gaps = [(g.start, g.size) for g in allocator._gaps]
        with pytest.raises(PartitionError, match="not free"):
            allocator.grow_partition("a", 4 << 20)
        assert allocator.bytes_unpartitioned == free_before
        assert [(g.start, g.size) for g in allocator._gaps] == gaps
        assert allocator.partition("a").size == 1 << 20

    def test_grown_heap_serves_absorbed_region(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        first = allocator.malloc("a", 1 << 20)  # partition is full
        allocator.grow_partition("a", 2 << 20)
        second = allocator.malloc("a", 1 << 20)
        record = allocator.bounds.lookup("a")
        assert record.contains(second, 1 << 20)
        assert second == first + (1 << 20)  # the absorbed upper half

    def test_grow_then_shrink_round_trips_mask_and_epoch(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        allocator.malloc("a", 4096)
        base = allocator.partition("a").base
        epoch = allocator.bounds.epoch("a")
        allocator.grow_partition("a", 4 << 20)
        assert allocator.bounds.lookup("a").mask == (4 << 20) - 1
        assert allocator.bounds.epoch("a") == epoch + 2
        shrunk = allocator.shrink_partition("a")
        assert shrunk.base == base
        assert allocator.bounds.lookup("a").mask == shrunk.size - 1
        assert allocator.bounds.epoch("a") == epoch + 4
        assert shrunk.size <= 1 << 20


class TestShrinkPartition:
    def test_refuses_below_high_water(self):
        allocator = make_allocator()
        allocator.create_partition("a", 4 << 20)
        allocator.malloc("a", (3 << 20))  # high water in the top half
        assert allocator.shrink_partition("a").size == 4 << 20

    def test_min_bytes_floors_the_shrink(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        allocator.malloc("a", 64)
        assert allocator.shrink_partition(
            "a", min_bytes=128 << 10).size == 128 << 10

    def test_released_halves_coalesce_with_free_space(self):
        allocator = make_allocator()
        allocator.create_partition("a", TOTAL)
        allocator.malloc("a", 4096)
        allocator.shrink_partition("a")
        # One gap: everything above the shrunk partition, in one piece.
        assert len(allocator._gaps) == 1
        partition = allocator.partition("a")
        assert allocator._gaps[0].start == partition.base + partition.size
        assert allocator.bytes_unpartitioned == TOTAL - partition.size


class TestFragmentationView:
    def test_pristine_and_exhausted_score_one(self):
        allocator = make_allocator()
        assert allocator.fragmentation_score() == 1.0
        allocator.create_partition("a", TOTAL)
        assert allocator.fragmentation_score() == 1.0  # nothing stranded

    def test_interleaved_departures_strand_capacity(self):
        allocator = make_allocator()
        for i in range(8):
            allocator.create_partition(str(i), TOTAL // 8)
        for i in range(0, 8, 2):
            allocator.release_partition(str(i))
        assert allocator.largest_carveable() == TOTAL // 8
        assert allocator.fragmentation_score() == pytest.approx(0.25)

    def test_largest_carveable_honours_alignment(self):
        allocator = make_allocator()
        allocator.create_partition("a", TOTAL // 4)
        allocator.create_partition("b", TOTAL // 4)
        allocator.create_partition("c", TOTAL // 2)
        allocator.release_partition("b")
        allocator.release_partition("c")
        # 3/4 of the space is free and contiguous, but a TOTAL/2
        # carve must sit size-aligned — only the upper half works.
        assert allocator.largest_carveable() == TOTAL // 2
        assert allocator.can_carve(TOTAL // 2)
        assert not allocator.can_carve(TOTAL)

    def test_find_fit_agrees_with_carve_paths(self):
        allocator = make_allocator()
        for i in range(6):
            allocator.create_partition(str(i), 1 << 20)
        for i in range(0, 6, 2):
            allocator.release_partition(str(i))
        for size in (1 << 19, 1 << 20, 2 << 20, 4 << 20, TOTAL):
            fit = allocator._find_fit(size)
            assert allocator.can_carve(size) == (fit is not None)
            if fit is not None:
                index, aligned = fit
                assert aligned % size == 0
                assert allocator._take_aligned(size) == aligned
                allocator._insert_gap(_Gap(aligned, size))


class TestBestRelocation:
    def test_plans_lowest_gap(self):
        allocator = make_allocator()
        allocator.create_partition("pad", 1 << 20)
        allocator.create_partition("mover", 1 << 20)
        hole = allocator.partition("pad").base
        allocator.release_partition("pad")
        assert allocator.best_relocation("mover") == hole

    def test_none_when_already_lowest(self):
        allocator = make_allocator()
        allocator.create_partition("a", 1 << 20)
        assert allocator.best_relocation("a") is None

    def test_is_non_mutating_and_matches_real_carve(self):
        allocator = make_allocator()
        allocator.create_partition("pad", 1 << 20)
        allocator.create_partition("mover", 1 << 20)
        allocator.release_partition("pad")
        gaps = [(g.start, g.size) for g in allocator._gaps]
        planned = allocator.best_relocation("mover")
        assert [(g.start, g.size) for g in allocator._gaps] == gaps
        # Replaying the plan lands exactly where predicted.
        allocator.release_partition("mover")
        assert allocator.create_partition(
            "mover", 1 << 20).base == planned

    def test_merges_own_region_into_the_gap_view(self):
        allocator = make_allocator()
        allocator.create_partition("below", 1 << 20)   # [0M, 1M)
        allocator.create_partition("mover", 2 << 20)   # [2M, 4M)
        allocator.release_partition("below")
        # No free gap alone holds an aligned 2M ([0M, 2M) is split
        # around nothing but starts free, [4M, ...) is not *lower*),
        # but merged with the mover's own region the view is [0M, 4M)
        # and the mover can slide to the bottom.
        assert allocator.best_relocation("mover") == BASE
