"""Mask arithmetic tests — the Fig. 5 invariants, property-checked.

These are the security-critical invariants of the whole system: if the
fence math is wrong, nothing downstream can save isolation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PartitionError
from repro.core import masks

partition_sizes = st.integers(min_value=8, max_value=34).map(
    lambda exponent: 1 << exponent
)
addresses = st.integers(min_value=0, max_value=(1 << 64) - 1)


@st.composite
def aligned_partitions(draw):
    size = draw(partition_sizes)
    slot = draw(st.integers(min_value=0, max_value=1 << 20))
    base = (0x7F_A000_0000_00 + slot * size) & ((1 << 64) - 1)
    base -= base % size  # size-aligned
    return base, size


class TestPaperExample:
    def test_fig5_mask(self):
        """The paper's worked example: 16 MB partition at
        0x7fa2d0000000 -> mask 0x000000FFFFFF."""
        size = 16 << 20
        assert masks.partition_mask(size) == 0x000000FFFFFF

    def test_fig5_wraparound(self):
        base = 0x7FA2D0000000
        mask = masks.partition_mask(16 << 20)
        # End address is base + size - 1 as the paper states.
        assert base + (16 << 20) - 1 == 0x7FA2D0FFFFFF
        # An address in a *different* partition wraps into ours.
        foreign = 0x7FA2C0001234
        fenced = masks.fence_address(foreign, base, mask)
        assert base <= fenced <= base + (16 << 20) - 1


class TestPowerOfTwo:
    def test_is_power_of_two(self):
        assert masks.is_power_of_two(1)
        assert masks.is_power_of_two(4096)
        assert not masks.is_power_of_two(0)
        assert not masks.is_power_of_two(3)
        assert not masks.is_power_of_two(-8)

    def test_next_power_of_two(self):
        assert masks.next_power_of_two(1) == 1
        assert masks.next_power_of_two(5) == 8
        assert masks.next_power_of_two(4096) == 4096
        assert masks.next_power_of_two(4097) == 8192

    def test_non_pow2_mask_rejected(self):
        with pytest.raises(PartitionError):
            masks.partition_mask(3000)

    def test_misaligned_base_rejected(self):
        with pytest.raises(PartitionError):
            masks.check_alignment(0x1000, 0x2000)


class TestFenceProperties:
    @given(aligned_partitions(), addresses)
    @settings(max_examples=300, deadline=None)
    def test_fenced_address_always_inside(self, partition, address):
        """THE invariant: no 64-bit address escapes the partition."""
        base, size = partition
        fenced = masks.fence_address(address, base,
                                     masks.partition_mask(size))
        assert base <= fenced < base + size

    @given(aligned_partitions(), st.integers(min_value=0))
    @settings(max_examples=300, deadline=None)
    def test_legal_addresses_unchanged(self, partition, offset):
        """Addresses already inside the partition pass through
        untouched — the zero-false-positive property that makes
        fencing safe for correct applications."""
        base, size = partition
        address = base + offset % size
        fenced = masks.fence_address(address, base,
                                     masks.partition_mask(size))
        assert fenced == address

    @given(aligned_partitions(), addresses)
    @settings(max_examples=200, deadline=None)
    def test_fencing_idempotent(self, partition, address):
        base, size = partition
        mask = masks.partition_mask(size)
        once = masks.fence_address(address, base, mask)
        twice = masks.fence_address(once, base, mask)
        assert once == twice

    @given(aligned_partitions(), addresses)
    @settings(max_examples=200, deadline=None)
    def test_modulo_fence_matches_bitwise_on_pow2(self, partition,
                                                  address):
        """For power-of-two partitions the two fencing schemes agree
        on non-negative offsets (bitwise is the fast path of the same
        function)."""
        base, size = partition
        if address < base:
            address += ((base - address) // size + 1) * size
        bitwise = masks.fence_address(address, base,
                                      masks.partition_mask(size))
        modulo = masks.modulo_fence(address, base, size)
        assert bitwise == modulo

    @given(
        aligned_partitions(),
        addresses,
        st.integers(min_value=1, max_value=(1 << 30)),
    )
    @settings(max_examples=200, deadline=None)
    def test_modulo_fence_arbitrary_size(self, partition, address,
                                         odd_extra):
        """Modulo fencing contains any address for any size (its
        selling point, paper §4.4)."""
        base, _ = partition
        size = odd_extra  # arbitrary, not power of two
        fenced = masks.modulo_fence(address, base, size)
        assert base <= fenced < base + size


class TestDivisionMagic:
    @given(partition_sizes, st.integers(0, (1 << 63) - 1))
    @settings(max_examples=200, deadline=None)
    def test_magic_reciprocal_quotient(self, size, value):
        """The q = mulhi(t, magic) estimate is off by at most one —
        the single-correction property the modulo patch relies on."""
        magic = masks.division_magic(size)
        estimate = (value * magic) >> 64
        exact = value // size
        assert exact - 1 <= estimate <= exact

    def test_magic_of_zero_rejected(self):
        with pytest.raises(PartitionError):
            masks.division_magic(0)


class TestInBounds:
    def test_exact_fit(self):
        assert masks.in_bounds(100, 28, 100, 28)

    def test_one_past_end(self):
        assert not masks.in_bounds(100, 29, 100, 28)

    def test_below_base(self):
        assert not masks.in_bounds(99, 1, 100, 28)

    @given(aligned_partitions(), addresses,
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=200, deadline=None)
    def test_checking_agrees_with_fence_identity(self, partition,
                                                 address, width):
        """Address checking accepts exactly the addresses that bitwise
        fencing leaves unchanged (modulo the width at the end)."""
        base, size = partition
        mask = masks.partition_mask(size)
        fenced_unchanged = (
            masks.fence_address(address, base, mask) == address
        )
        accepted = masks.in_bounds(address, width, base, size)
        if accepted:
            assert fenced_unchanged
