"""FencingMode policy tests."""

import pytest

from repro.core.policy import FencingMode


class TestFencingMode:
    def test_four_modes(self):
        assert {mode.value for mode in FencingMode} == {
            "none", "bitwise", "modulo", "checking",
        }

    def test_extra_params_per_mode(self):
        assert FencingMode.NONE.extra_params == ()
        assert FencingMode.BITWISE.extra_params == (
            "guardian_base", "guardian_mask")
        assert FencingMode.MODULO.extra_params == (
            "guardian_base", "guardian_size", "guardian_magic")
        assert FencingMode.CHECKING.extra_params == (
            "guardian_base", "guardian_end")

    def test_only_bitwise_requires_power_of_two(self):
        assert FencingMode.BITWISE.requires_power_of_two
        assert not FencingMode.MODULO.requires_power_of_two
        assert not FencingMode.CHECKING.requires_power_of_two
        assert not FencingMode.NONE.requires_power_of_two

    def test_only_checking_detects(self):
        """Fencing contains silently; checking is the debug mode that
        can report violations (§4.4)."""
        detectors = [mode for mode in FencingMode
                     if mode.detects_violations]
        assert detectors == [FencingMode.CHECKING]
