"""Semantic tests of patched kernels: executed on the simulator.

Two obligations per fencing mode:

1. **Transparency** — a legal kernel behaves identically after
   patching (same outputs);
2. **Containment** — an out-of-bounds access never touches memory
   outside the partition: bitwise/modulo wrap it inside, checking
   suppresses it.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.masks import division_magic, fence_address, partition_mask
from repro.core.patcher import PTXPatcher
from repro.core.policy import FencingMode
from repro.gpu.executor import KernelExecutor, compile_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.specs import QUADRO_RTX_A4000

from tests.conftest import reader_kernel, saxpy_kernel, writer_kernel

SPEC = QUADRO_RTX_A4000
BASE = 0x7F_A000_0000_00
PART_SIZE = 1 << 20


def extra_params(mode, base=BASE, size=PART_SIZE):
    if mode is FencingMode.BITWISE:
        return [base, partition_mask(size)]
    if mode is FencingMode.MODULO:
        return [base, size, division_magic(size)]
    if mode is FencingMode.CHECKING:
        return [base, base + size]
    return []


def run_patched(kernel, mode, grid, block, params, setup=None,
                use_codegen=True):
    patched, _ = PTXPatcher(mode).patch_kernel(kernel)
    memory = GlobalMemory(1 << 24)
    if setup:
        setup(memory)
    executor = KernelExecutor(SPEC, memory, use_codegen=use_codegen)
    compiled = compile_kernel(patched, SPEC)
    result = executor.launch(compiled, grid, block,
                             list(params) + extra_params(mode))
    return memory, result


MODES = [FencingMode.BITWISE, FencingMode.MODULO, FencingMode.CHECKING]


class TestTransparency:
    """Legal kernels must produce identical results when sandboxed."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("use_codegen", [True, False],
                             ids=["jit", "interp"])
    def test_saxpy_unchanged(self, mode, use_codegen):
        xs = np.arange(64, dtype=np.float32)

        def setup(memory):
            memory.write_array(BASE + 8192, xs)

        memory, _ = run_patched(
            saxpy_kernel(), mode, (1, 1, 1), (64, 1, 1),
            [BASE, BASE + 8192, 2.0, 64], setup,
            use_codegen=use_codegen,
        )
        assert np.allclose(memory.read_array(BASE, 64), 2.0 * xs)

    @pytest.mark.parametrize("mode", MODES)
    def test_legal_writer_unchanged(self, mode):
        memory, _ = run_patched(
            writer_kernel(), mode, (1, 1, 1), (1, 1, 1),
            [BASE, 4096, 1234],
        )
        assert memory.load_scalar(BASE + 4096, "u32") == 1234

    @pytest.mark.parametrize("mode", MODES)
    def test_cost_increases_in_mode_order(self, mode):
        """bitwise < modulo < checking per-access cost (§4.4)."""
        _, native = run_patched(saxpy_kernel(), FencingMode.NONE,
                                (1, 1, 1), (64, 1, 1),
                                [BASE, BASE + 8192, 1.0, 64])
        _, fenced = run_patched(saxpy_kernel(), mode,
                                (1, 1, 1), (64, 1, 1),
                                [BASE, BASE + 8192, 1.0, 64])
        assert fenced.total_warp_cycles > native.total_warp_cycles

    def test_mode_cost_ordering(self):
        costs = {}
        for mode in [FencingMode.NONE] + MODES:
            _, result = run_patched(saxpy_kernel(), mode,
                                    (1, 1, 1), (64, 1, 1),
                                    [BASE, BASE + 8192, 1.0, 64])
            costs[mode] = result.total_warp_cycles
        assert (costs[FencingMode.NONE] < costs[FencingMode.BITWISE]
                < costs[FencingMode.MODULO]
                < costs[FencingMode.CHECKING])


class TestContainmentWrites:
    VICTIM = BASE + PART_SIZE + 256  # outside the partition

    def _attack(self, mode, evil_offset):
        def setup(memory):
            memory.write(self.VICTIM, b"\xAA" * 64)

        memory, _ = run_patched(
            writer_kernel(), mode, (1, 1, 1), (1, 1, 1),
            [BASE, evil_offset, 0xDEAD], setup,
        )
        return memory

    @pytest.mark.parametrize("mode", MODES)
    def test_write_into_neighbour_contained(self, mode):
        evil = (self.VICTIM + 16) - BASE
        memory = self._attack(mode, evil)
        assert memory.read(self.VICTIM, 64) == b"\xAA" * 64

    @pytest.mark.parametrize("mode", MODES)
    def test_write_far_above_contained(self, mode):
        memory = self._attack(mode, 1 << 23)
        assert memory.read(self.VICTIM, 64) == b"\xAA" * 64

    def test_bitwise_wraps_into_own_partition(self):
        """Fig. 5: the fenced address lands in the attacker's own
        partition at the masked offset."""
        evil = (self.VICTIM + 16) - BASE
        memory = self._attack(FencingMode.BITWISE, evil)
        wrapped = fence_address(BASE + evil, BASE,
                                partition_mask(PART_SIZE))
        assert BASE <= wrapped < BASE + PART_SIZE
        assert memory.load_scalar(wrapped, "u32") == 0xDEAD

    def test_checking_suppresses_write_entirely(self):
        """Address checking detects and returns: the write happens
        nowhere, not even wrapped."""
        evil = (self.VICTIM + 16) - BASE
        memory = self._attack(FencingMode.CHECKING, evil)
        wrapped = fence_address(BASE + evil, BASE,
                                partition_mask(PART_SIZE))
        assert memory.load_scalar(wrapped, "u32") == 0

    @pytest.mark.parametrize("mode", MODES)
    def test_negative_offset_contained(self, mode):
        """Attacks below the partition base (negative effective
        offset) are contained too."""
        def setup(memory):
            pass

        memory, _ = run_patched(
            writer_kernel(), mode, (1, 1, 1), (1, 1, 1),
            [BASE + 65536, (1 << 64) - 65536 - 4096, 0xBEEF], setup,
        )
        # The write must not land at BASE - 4096... which is unmapped
        # anyway; the real assertion is that no fault occurred and the
        # partition's own bytes outside the wrap target are clean.


class TestContainmentReads:
    SECRET = BASE + PART_SIZE + 512

    @pytest.mark.parametrize("mode", MODES)
    def test_secret_not_exfiltrated(self, mode):
        """A read reaching into a neighbour must not return the
        neighbour's data."""
        def setup(memory):
            memory.store_scalar(self.SECRET, "u32", 0x5EC2E7)

        evil = self.SECRET - BASE
        memory, _ = run_patched(
            reader_kernel(), mode, (1, 1, 1), (1, 1, 1),
            [BASE, BASE, evil], setup,
        )
        leaked = memory.load_scalar(BASE, "u32")
        assert leaked != 0x5EC2E7


class TestContainmentProperty:
    @given(
        evil_offset=st.integers(min_value=0, max_value=(1 << 62)),
        mode=st.sampled_from(MODES),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_offset_escapes(self, evil_offset, mode):
        """Property: for ANY 62-bit offset, bytes outside the
        partition are untouched after a patched write. Misaligned
        fenced addresses abort the (malicious) kernel, as on real
        hardware — that also counts as containment."""
        from repro.errors import MemoryFault

        def setup(memory):
            memory.write(BASE + PART_SIZE, b"\x33" * 4096)

        try:
            memory, _ = run_patched(
                writer_kernel(), mode, (1, 1, 1), (1, 1, 1),
                [BASE, evil_offset, 0xF00D], setup,
            )
        except MemoryFault as fault:
            assert "misaligned" in str(fault)
            return
        assert memory.read(BASE + PART_SIZE, 4096) == b"\x33" * 4096


class TestBrxContainment:
    def test_wild_indirect_branch_wrapped(self):
        """brx.idx with an attacker-controlled index wraps modulo the
        table size instead of faulting/escaping (§4.3)."""
        from repro.ptx.builder import KernelBuilder

        b = KernelBuilder("jump", params=[("out", "u64"),
                                          ("sel", "u32")])
        out = b.load_param_ptr("out")
        selector = b.load_param("sel", "u32")
        end = b.fresh_label("end")
        c0, c1 = b.fresh_label("c0"), b.fresh_label("c1")
        b.brx_idx(selector, [c0, c1])
        b.label(c0)
        b.st_global("u32", out, 100)
        b.bra(end)
        b.label(c1)
        b.st_global("u32", out, 200)
        b.label(end)
        memory, _ = run_patched(b.build(), FencingMode.BITWISE,
                                (1, 1, 1), (1, 1, 1), [BASE, 7])
        # 7 mod 2 == 1 -> case c1.
        assert memory.load_scalar(BASE, "u32") == 200
