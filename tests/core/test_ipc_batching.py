"""Batched asynchronous IPC submission (flush-on-sync coalescing)."""

import pytest

from repro.errors import IPCError
from repro.core.ipc import IPCChannel, IPCCostModel


class Recorder:
    """A fake server that logs call order and returns fixed costs."""

    def __init__(self, server_cycles: int = 100):
        self.calls: list[tuple] = []
        self.server_cycles = server_cycles

    def op(self, app_id, *args):
        self.calls.append(("op", app_id) + args)
        return None, self.server_cycles

    def sync_op(self, app_id, *args):
        self.calls.append(("sync_op", app_id) + args)
        return "result", self.server_cycles

    def failing(self, app_id, *args):
        self.calls.append(("failing", app_id) + args)
        raise RuntimeError("server-side failure")


COSTS = IPCCostModel(roundtrip=1000, marshal=100, bytes_per_cycle=8)


def make_channel(target=None, **kwargs):
    target = target or Recorder()
    channel = IPCChannel(target, "app", costs=COSTS, batching=True,
                         **kwargs)
    return channel, channel._target


class TestCoalescing:
    def test_async_calls_queue_until_flush(self):
        channel, target = make_channel()
        for i in range(3):
            assert channel.call("op", i, sync=False) is None
        assert channel.queued_calls == 3
        assert target.calls == []  # nothing delivered yet
        assert channel.flush() == 3
        assert [call[2] for call in target.calls] == [0, 1, 2]  # FIFO

    def test_batch_cycle_math(self):
        """k queued calls cost k*marshal + payloads at call time and a
        single roundtrip/2 at flush — not k*(marshal + roundtrip/2)."""
        channel, _ = make_channel()
        for _ in range(4):
            channel.call("op", payload_bytes=80, sync=False)
        queued_cost = 4 * (COSTS.marshal + 80 // COSTS.bytes_per_cycle)
        assert channel.stats.client_cycles == queued_cost
        channel.flush()
        assert channel.stats.client_cycles == (
            queued_cost + COSTS.roundtrip // 2
        )
        assert channel.stats.batches == 1
        assert channel.stats.batched_messages == 4
        assert channel.stats.largest_batch == 4

    def test_sync_call_is_a_flush_barrier(self):
        channel, target = make_channel()
        channel.call("op", 1, sync=False)
        channel.call("op", 2, sync=False)
        result = channel.call("sync_op", 3)
        # Queued work reached the server before the synchronous call.
        assert [call[0] for call in target.calls] == [
            "op", "op", "sync_op"
        ]
        assert result == "result"
        # 2 queued marshals + one flush half-trip + full sync cost.
        assert channel.stats.client_cycles == (
            2 * COSTS.marshal
            + COSTS.roundtrip // 2
            + COSTS.marshal + COSTS.roundtrip + target.server_cycles
        )

    def test_full_batch_flushes_itself(self):
        channel, target = make_channel(max_batch=2)
        channel.call("op", 1, sync=False)
        assert channel.queued_calls == 1
        channel.call("op", 2, sync=False)
        assert channel.queued_calls == 0
        assert len(target.calls) == 2

    def test_close_flushes_pending_calls(self):
        channel, target = make_channel()
        channel.call("op", 1, sync=False)
        channel.close()
        assert len(target.calls) == 1
        with pytest.raises(IPCError):
            channel.call("op", 2, sync=False)

    def test_deferred_error_surfaces_at_flush(self):
        channel, target = make_channel()
        channel.call("op", 1, sync=False)
        channel.call("failing", sync=False)  # no error yet
        channel.call("op", 2, sync=False)
        with pytest.raises(RuntimeError):
            channel.flush()
        # Calls before the failure were delivered; later ones dropped.
        assert [call[0] for call in target.calls] == ["op", "failing"]
        assert channel.queued_calls == 0

    def test_unknown_method_rejected_at_call_time(self):
        channel, _ = make_channel()
        with pytest.raises(IPCError):
            channel.call("nonexistent", sync=False)
        assert channel.queued_calls == 0

    def test_bad_max_batch_rejected(self):
        with pytest.raises(IPCError):
            IPCChannel(Recorder(), "app", batching=True, max_batch=0)


class TestDisabledMatchesSeedModel:
    """With batching off the channel is cycle-identical to the
    unbatched model every figure reproduction assumes."""

    def test_async_call_costs(self):
        target = Recorder()
        channel = IPCChannel(target, "app", costs=COSTS)
        channel.call("op", payload_bytes=800, sync=False)
        assert len(target.calls) == 1  # dispatched immediately
        assert channel.stats.client_cycles == (
            COSTS.roundtrip // 2 + COSTS.marshal
            + 800 // COSTS.bytes_per_cycle
        )
        assert channel.stats.batches == 0

    def test_sync_call_costs(self):
        target = Recorder()
        channel = IPCChannel(target, "app", costs=COSTS)
        channel.call("sync_op")
        assert channel.stats.client_cycles == (
            COSTS.roundtrip + COSTS.marshal + target.server_cycles
        )
