"""cudaGetExportTable tests — the undocumented corner of the runtime."""

import pytest

from repro.errors import DriverError
from repro.runtime.export_table import (
    EXPORT_TABLE_UUIDS,
    TOTAL_EXPORTED_FUNCTIONS,
    build_export_tables,
)


class TestTableInventory:
    def test_seven_tables(self):
        # "about seven export tables" (paper §4.1).
        assert len(EXPORT_TABLE_UUIDS) == 7

    def test_more_than_ninety_functions(self):
        # "...containing more than 90 functions".
        assert TOTAL_EXPORTED_FUNCTIONS > 90

    def test_tables_built_to_size(self, native_stack):
        _, backend, _ = native_stack
        tables = build_export_tables(backend)
        total = sum(len(table) for table in tables.values())
        assert total == TOTAL_EXPORTED_FUNCTIONS


class TestTableBehaviour:
    def test_runtime_exposes_tables(self, native_stack):
        _, _, runtime = native_stack
        table = runtime.cudaGetExportTable(EXPORT_TABLE_UUIDS[0])
        assert callable(table["ctxLocalStorageGet"])

    def test_unknown_uuid_rejected(self, native_stack):
        _, _, runtime = native_stack
        with pytest.raises(DriverError):
            runtime.cudaGetExportTable("0000-not-a-table")

    def test_occupancy_uses_device_spec(self, native_stack):
        device, _, runtime = native_stack
        table = runtime.cudaGetExportTable(EXPORT_TABLE_UUIDS[4])
        blocks = table["occupancyMaxActiveBlocks"](128)
        assert blocks == device.spec.max_resident_warps * 32 // 128

    def test_hidden_functions_callable(self, native_stack):
        _, _, runtime = native_stack
        for uuid in EXPORT_TABLE_UUIDS:
            table = runtime.cudaGetExportTable(uuid)
            for function in table.values():
                function()  # every entry must be invocable

    def test_guardian_serves_same_tables(self, guardian_system):
        from tests.conftest import make_guardian_tenant

        _, server = guardian_system
        _, runtime = make_guardian_tenant(server, "t0")
        table = runtime.cudaGetExportTable(EXPORT_TABLE_UUIDS[1])
        assert table["primaryCtxRetain"]() == 1
