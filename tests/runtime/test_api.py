"""CUDA runtime API tests: call surface and host-cost accounting."""

import numpy as np
import pytest

from repro.errors import RuntimeAPIError
from repro.driver.fatbin import build_fatbin
from repro.runtime.api import HostCostModel, MemcpyKind

from tests.conftest import saxpy_module


class TestMemoryAPI:
    def test_malloc_free_cycle(self, native_stack):
        _, _, runtime = native_stack
        address = runtime.cudaMalloc(1024)
        runtime.cudaFree(address)
        address2 = runtime.cudaMalloc(1024)
        assert address2 == address

    def test_malloc_zero_rejected(self, native_stack):
        _, _, runtime = native_stack
        with pytest.raises(RuntimeAPIError):
            runtime.cudaMalloc(0)

    def test_memcpy_roundtrip(self, native_stack):
        _, _, runtime = native_stack
        address = runtime.cudaMalloc(64)
        runtime.cudaMemcpyH2D(address, b"a" * 64)
        assert runtime.cudaMemcpyD2H(address, 64) == b"a" * 64

    def test_memcpy_d2d(self, native_stack):
        _, _, runtime = native_stack
        src = runtime.cudaMalloc(64)
        dst = runtime.cudaMalloc(64)
        runtime.cudaMemcpyH2D(src, b"z" * 64)
        runtime.cudaMemcpyD2D(dst, src, 64)
        assert runtime.cudaMemcpyD2H(dst, 64) == b"z" * 64

    def test_memset(self, native_stack):
        _, _, runtime = native_stack
        address = runtime.cudaMalloc(32)
        runtime.cudaMemset(address, 0x7F, 32)
        assert runtime.cudaMemcpyD2H(address, 32) == b"\x7f" * 32

    def test_dispatch_form(self, native_stack):
        _, _, runtime = native_stack
        address = runtime.cudaMalloc(16)
        runtime.cudaMemcpy(MemcpyKind.H2D, dst=address, data=b"b" * 16)
        out = runtime.cudaMemcpy(MemcpyKind.D2H, src=address, size=16)
        assert out == b"b" * 16


class TestKernelAPI:
    def test_register_and_launch(self, native_stack):
        _, _, runtime = native_stack
        handles = runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        assert "saxpy" in handles
        address = runtime.cudaMalloc(512)
        runtime.cudaMemcpyH2D(
            address + 256, np.ones(32, dtype=np.float32).tobytes())
        runtime.cudaLaunchKernel(handles["saxpy"], (1, 1, 1), (32, 1, 1),
                                 [address, address + 256, 2.0, 32])
        out = np.frombuffer(runtime.cudaMemcpyD2H(address, 128),
                            dtype=np.float32)
        assert np.allclose(out, 2.0)

    def test_stream_creation(self, native_stack):
        _, _, runtime = native_stack
        first = runtime.cudaStreamCreate()
        second = runtime.cudaStreamCreate()
        assert first != second

    def test_device_properties(self, native_stack):
        device, _, runtime = native_stack
        assert runtime.cudaGetDeviceProperties() is device.spec


class TestHostCosts:
    def test_every_call_charged(self, native_stack):
        _, _, runtime = native_stack
        runtime.cudaMalloc(64)
        runtime.cudaDeviceSynchronize()
        calls = runtime.profile.calls
        assert calls["cudaMalloc"] == 1
        assert calls["cudaDeviceSynchronize"] == 1
        assert runtime.profile.cycles > 0

    def test_host_seconds_conversion(self, native_stack):
        _, _, runtime = native_stack
        runtime.cudaMalloc(64)
        costs = HostCostModel()
        assert runtime.host_seconds() == pytest.approx(
            runtime.profile.cycles / (costs.cpu_ghz * 1e9))

    def test_surface_costs_are_thin(self):
        """The runtime surface is bookkeeping; the 9000-cycle launch
        syscall lives in the driver layer (Table 5 split)."""
        costs = HostCostModel()
        assert costs.launch < 1000

    def test_driver_cost_charged_by_backend(self, native_stack):
        _, backend, runtime = native_stack
        handles = runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        address = runtime.cudaMalloc(256)
        before = backend.profile.cycles
        runtime.cudaLaunchKernel(handles["saxpy"], (1, 1, 1), (32, 1, 1),
                                 [address, address, 1.0, 16])
        assert backend.profile.cycles - before == backend.costs.launch
