"""dlopen / LD_PRELOAD simulation tests."""

import pytest

from repro.runtime.interpose import (
    LIBCUDA,
    DynamicLoader,
    LinkError,
)


class TestDynamicLoader:
    def test_register_and_dlopen(self):
        loader = DynamicLoader()
        marker = object()
        loader.register(LIBCUDA, marker)
        assert loader.dlopen(LIBCUDA) is marker

    def test_missing_library(self):
        loader = DynamicLoader()
        with pytest.raises(LinkError):
            loader.dlopen("libnothing.so")

    def test_preload_shadows_original(self):
        loader = DynamicLoader()
        original, shim = object(), object()
        loader.register(LIBCUDA, original)
        loader.preload(LIBCUDA, shim)
        assert loader.dlopen(LIBCUDA) is shim

    def test_preload_without_original(self):
        # LD_PRELOAD works even when the original isn't present.
        loader = DynamicLoader()
        shim = object()
        loader.preload(LIBCUDA, shim)
        assert loader.dlopen(LIBCUDA) is shim

    def test_resolution_audit_trail(self):
        loader = DynamicLoader()
        loader.register(LIBCUDA, object())
        loader.dlopen(LIBCUDA)
        loader.preload(LIBCUDA, object())
        loader.dlopen(LIBCUDA)
        assert loader.resolutions == [(LIBCUDA, False), (LIBCUDA, True)]

    def test_ordering_constraint(self):
        """A binding resolved *before* the preload keeps the original —
        the reason Guardian must be preloaded at application startup
        (paper §4.1)."""
        loader = DynamicLoader()
        original, shim = object(), object()
        loader.register(LIBCUDA, original)
        early_binding = loader.dlopen(LIBCUDA)   # resolved pre-preload
        loader.preload(LIBCUDA, shim)
        late_binding = loader.dlopen(LIBCUDA)
        assert early_binding is original
        assert late_binding is shim

    def test_is_preloaded(self):
        loader = DynamicLoader()
        assert not loader.is_preloaded(LIBCUDA)
        loader.preload(LIBCUDA, object())
        assert loader.is_preloaded(LIBCUDA)
