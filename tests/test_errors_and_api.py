"""Exception hierarchy and top-level package API tests."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaves = [
            errors.PTXParseError("x"), errors.PTXValidationError("x"),
            errors.MemoryFault(0x100), errors.ExecutionError("x"),
            errors.LaunchError("x"), errors.DriverError("x"),
            errors.RuntimeAPIError("x"), errors.PartitionError("x"),
            errors.AllocationError("x"),
            errors.BoundsViolation("app", 0, 4), errors.PatcherError("x"),
            errors.IPCError("x"),
        ]
        for error in leaves:
            assert isinstance(error, errors.ReproError)

    def test_guardian_errors_grouped(self):
        for cls in (errors.PartitionError, errors.AllocationError,
                    errors.BoundsViolation, errors.PatcherError,
                    errors.IPCError):
            assert issubclass(cls, errors.GuardianError)

    def test_parse_error_carries_line(self):
        error = errors.PTXParseError("bad token", line=42)
        assert error.line == 42
        assert "line 42" in str(error)

    def test_memory_fault_fields(self):
        fault = errors.MemoryFault(0xDEAD0000, 8, "write")
        assert fault.address == 0xDEAD0000
        assert fault.size == 8
        assert "0xdead0000" in str(fault)

    def test_bounds_violation_message(self):
        violation = errors.BoundsViolation("mallory", 0x1000, 256,
                                           detail="H2D destination")
        assert "mallory" in str(violation)
        assert "H2D destination" in str(violation)


class TestPackageAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_facade_roundtrip(self):
        system = repro.GuardianSystem()
        tenant = system.attach("t", 1 << 20)
        assert tenant.runtime.backend is tenant.client
        system.detach("t")
        system.detach("t")  # idempotent

    def test_both_device_specs_exported(self):
        assert repro.QUADRO_RTX_A4000.name == "Quadro RTX A4000"
        assert repro.GEFORCE_RTX_3080TI.name == "GeForce RTX 3080 Ti"
