"""Live tenant migration: snapshot, restore, rebind, and its limits."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, GuardianCluster, PlacementPolicy
from repro.core.policy import FencingMode
from repro.core.supervisor import SupervisorPolicy
from repro.errors import MigrationError, NodeDown, TransientIPCFault
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.ptx.builder import build_module
from repro.ptx.emitter import emit_module

from tests.conftest import saxpy_kernel

PARTITION = 1 << 20


def saxpy_ptx():
    return emit_module(build_module([saxpy_kernel()]))


@pytest.fixture
def cluster():
    return GuardianCluster(2)


def attach_with_data(cluster, app_id=u"alice", fill=b"\xab"):
    session = cluster.attach(app_id, PARTITION)
    ptr = session.client.malloc(8192)
    session.client.memcpy_h2d(ptr, fill * 8192)
    return session, ptr


def other_node(cluster, session):
    return next(n for n in cluster.nodes
                if n.node_id != session.node.node_id)


class TestHappyPath:
    def test_bytes_survive(self, cluster):
        session, ptr = attach_with_data(cluster)
        assert cluster.migrate("alice", reason="test")
        assert session.client.memcpy_d2h(ptr, 8192) == b"\xab" * 8192

    def test_partition_moves_nodes(self, cluster):
        session, _ = attach_with_data(cluster)
        source = session.node
        assert cluster.migrate("alice")
        assert session.node is not source
        assert "alice" not in source.resident_tenants()
        assert "alice" in session.node.resident_tenants()
        assert source.server.stats.tenants_migrated_out == 1
        assert session.node.server.stats.tenants_migrated_in == 1

    def test_source_residue_scrubbed(self, cluster):
        session, _ = attach_with_data(cluster)
        source = session.node
        assert cluster.migrate("alice")
        assert source.server.stats.bytes_scrubbed >= PARTITION

    def test_nonzero_delta_translation(self, cluster):
        """With a pad occupying the target's first slot, the restored
        base differs from the origin: every client op still works on
        the tenant's original (virtual) pointers."""
        cluster.attach("pad", 1 << 21)  # lands on node0 with alice
        session, ptr = attach_with_data(cluster)
        target = other_node(cluster, session)
        assert cluster.migrate("alice", target=target)
        client = session.client
        assert client.delta != 0
        assert client.memcpy_d2h(ptr, 8192) == b"\xab" * 8192
        fresh = client.malloc(4096)
        client.memset(fresh, 0x5A, 4096)
        assert client.memcpy_d2h(fresh, 4096) == b"\x5a" * 4096
        client.free(fresh)

    def test_kernel_launch_after_migration(self, cluster):
        """Kernel pointer params stay virtual — the bitwise fence
        relocates them onto the new base."""
        cluster.attach("pad", 1 << 21)
        session, _ = attach_with_data(cluster)
        client = session.client
        handles = client.load_module_ptx(saxpy_ptx())
        buf = client.malloc(512)
        client.memcpy_h2d(buf + 256,
                          np.ones(32, dtype=np.float32).tobytes())
        client.launch_kernel(handles["saxpy"], (1, 1, 1), (32, 1, 1),
                             [buf, buf + 256, 4.0, 32])
        assert cluster.migrate(
            "alice", target=other_node(cluster, session))
        assert client.delta != 0
        # Same handle, same virtual pointers, on the new node.
        client.launch_kernel(handles["saxpy"], (1, 1, 1), (32, 1, 1),
                             [buf, buf + 256, 2.0, 32])
        out = np.frombuffer(client.memcpy_d2h(buf, 128), np.float32)
        assert np.allclose(out, 6.0)

    def test_module_handles_survive(self, cluster):
        session, _ = attach_with_data(cluster)
        handles = session.client.load_module_ptx(saxpy_ptx())
        assert cluster.migrate("alice")
        # The restored tenant resolves the same handle numbers.
        target = session.node
        assert set(handles.values()) <= set(
            target.server._tenants["alice"].functions)

    def test_bounds_republished_at_new_base(self, cluster):
        cluster.attach("pad", 1 << 21)
        session, _ = attach_with_data(cluster)
        source_record = session.node.server.allocator.bounds.read("alice")
        target = other_node(cluster, session)
        assert cluster.migrate("alice", target=target)
        record = target.server.allocator.bounds.read("alice")
        assert record.base != source_record.base
        assert record.size == source_record.size

    def test_migration_record_models_pcie_cost(self, cluster):
        attach_with_data(cluster)
        assert cluster.migrate("alice")
        record = cluster.migrations[-1]
        assert record.success
        assert record.bytes_moved == PARTITION
        assert record.transfer_seconds > 0

    def test_client_tracks_migration_count(self, cluster):
        session, _ = attach_with_data(cluster)
        assert session.client.migrations == 0
        cluster.migrate("alice")
        assert session.client.migrations == 1


class TestFailurePaths:
    def test_truncated_snapshot_aborts_cleanly(self, cluster):
        """A partial snapshot (injected fault) must leave the tenant
        attached to its source, untouched."""
        plan = FaultPlan(seed=7, specs=[FaultSpec(
            kind=FaultKind.SNAPSHOT_PARTIAL, tenant="node0",
            op="migrate", at_call=1,
        )])
        cluster = GuardianCluster(2, fault_plan=plan)
        session, ptr = attach_with_data(cluster)
        assert session.node.node_id == "node0"
        assert not cluster.migrate("alice", reason="doomed")
        record = cluster.migrations[-1]
        assert not record.success and "snapshot carries" in record.detail
        # Tenant untouched on the source.
        assert session.node.node_id == "node0"
        assert session.client.memcpy_d2h(ptr, 8192) == b"\xab" * 8192
        # Second attempt (fault spec exhausted) succeeds.
        assert cluster.migrate("alice", reason="retry")

    def test_no_target_fails_without_side_effects(self):
        cluster = GuardianCluster(1)
        session, ptr = attach_with_data(cluster)
        assert not cluster.migrate("alice")
        assert cluster.migrations[-1].detail == "no eligible target node"
        assert session.client.memcpy_d2h(ptr, 8192) == b"\xab" * 8192

    def test_unknown_tenant_is_false(self, cluster):
        assert not cluster.migrate("ghost")

    def test_source_crash_mid_migration_tenant_survives(self):
        """Copy-then-switch: the source dying after the snapshot cut
        does not lose the tenant."""
        plan = FaultPlan(seed=7, specs=[FaultSpec(
            kind=FaultKind.NODE_CRASH, tenant="node0",
            op="migrate", at_call=1,
        )])
        cluster = GuardianCluster(2, fault_plan=plan)
        session, ptr = attach_with_data(cluster)
        assert cluster.migrate("alice", reason="crash mid-copy")
        assert cluster.node("node0").crashed
        assert session.node.node_id == "node1"
        assert session.client.memcpy_d2h(ptr, 8192) == b"\xab" * 8192

    def test_grow_refused_after_relocation(self, cluster):
        cluster.attach("pad", 1 << 21)
        session, _ = attach_with_data(cluster)
        assert cluster.migrate(
            "alice", target=other_node(cluster, session))
        assert session.client.delta != 0
        with pytest.raises(MigrationError, match="growth"):
            session.client.grow_partition(PARTITION * 2)

    def test_ops_on_crashed_node_raise_nodedown(self, cluster):
        session, ptr = attach_with_data(cluster)
        session.node.crash("power loss")
        with pytest.raises(NodeDown):
            session.client.memcpy_d2h(ptr, 8192)

    def test_migration_requires_bitwise_fence(self):
        with pytest.raises(MigrationError, match="BITWISE"):
            GuardianCluster(2, config=ClusterConfig(
                mode=FencingMode.CHECKING))

    def test_non_bitwise_allowed_without_migration(self):
        cluster = GuardianCluster(2, config=ClusterConfig(
            mode=FencingMode.CHECKING, enable_migration=False))
        cluster.attach("alice", PARTITION)


class TestSupervisorRung:
    def test_budget_pressure_triggers_migration(self):
        """A tenant burning fault budget is moved (not evicted) once
        it crosses the migrate fraction."""
        plan = FaultPlan(seed=3, specs=[FaultSpec(
            kind=FaultKind.IPC_DROP, tenant="alice", op="memcpy_h2d",
            at_call=1, times=30,
        )])
        policy = SupervisorPolicy(
            migrate_budget_fraction=0.25, backoff_jitter=0.0,
        )
        cluster = GuardianCluster(
            2,
            config=ClusterConfig(
                supervisor_policy=policy,
                placement=PlacementPolicy(pack=False),
            ),
            fault_plan=plan,
        )
        session = cluster.attach("alice", PARTITION)
        ptr = session.client.malloc(8192)
        source = session.node
        # The drop exhausts its retries: weight 4.0 against the 8.0
        # budget crosses the 0.25 migrate fraction, so the supervisor
        # moves the tenant as the failing call unwinds.
        with pytest.raises(TransientIPCFault):
            session.client.memcpy_h2d(ptr, b"\x01" * 8192)
        assert session.client.migrations == 1
        assert session.node is not source
        actions = [r.action for r in source.supervisor.records]
        assert "migrated" in actions
        # The moved tenant keeps working on the new node.
        session.client.memcpy_h2d(ptr, b"\x02" * 8192)
        assert session.client.memcpy_d2h(ptr, 8192) == b"\x02" * 8192


class TestDetachAndEvacuate:
    def test_detach_after_migration(self, cluster):
        session, _ = attach_with_data(cluster)
        cluster.migrate("alice")
        node = session.node
        cluster.detach("alice")
        assert "alice" not in node.resident_tenants()
        assert "alice" not in cluster.tenants

    def test_evacuate_is_idempotent(self, cluster):
        session, _ = attach_with_data(cluster)
        server = session.node.server
        assert server.evacuate("alice") == PARTITION
        assert server.evacuate("alice") == 0
