"""The node health state machine: misses, scores, hysteresis."""

import pytest

from repro.cluster.health import (
    ACTION_WEIGHTS,
    HealthPolicy,
    NodeHealth,
    NodeHealthMonitor,
)


@pytest.fixture
def monitor():
    return NodeHealthMonitor("node0")


class TestHeartbeatLadder:
    def test_starts_healthy(self, monitor):
        assert monitor.state is NodeHealth.HEALTHY
        assert monitor.alive and monitor.placeable

    def test_one_miss_makes_suspect(self, monitor):
        assert monitor.beat(answered=False) is NodeHealth.SUSPECT
        assert not monitor.placeable
        assert monitor.alive

    def test_consecutive_misses_declare_down(self, monitor):
        for _ in range(3):
            monitor.beat(answered=False)
        assert monitor.state is NodeHealth.DOWN
        assert not monitor.alive

    def test_answer_resets_consecutive_count(self, monitor):
        monitor.beat(answered=False)
        monitor.beat(answered=False)
        monitor.beat(answered=True)  # back in time
        monitor.beat(answered=False)
        monitor.beat(answered=False)
        assert monitor.state is not NodeHealth.DOWN
        assert monitor.missed_total == 4

    def test_down_is_terminal(self, monitor):
        for _ in range(3):
            monitor.beat(answered=False)
        for _ in range(50):
            monitor.beat(answered=True)
        assert monitor.state is NodeHealth.DOWN

    def test_force_down(self, monitor):
        monitor.force_down("power loss")
        assert monitor.state is NodeHealth.DOWN
        assert monitor.transitions[-1].reason == "power loss"


class TestFailureScore:
    def test_failure_weight_degrades(self, monitor):
        monitor.note_failure("fenced")      # 1.0
        monitor.note_failure("fenced")      # 2.0 >= degrade_score
        assert monitor.state is NodeHealth.DEGRADED
        assert monitor.placeable  # degraded still accepts load

    def test_heavy_score_makes_suspect_while_answering(self, monitor):
        for _ in range(3):
            monitor.note_failure("quarantined")  # 3.0 each
        assert monitor.score >= monitor.policy.suspect_score
        assert monitor.state is NodeHealth.SUSPECT

    def test_score_decays_back_to_healthy(self, monitor):
        monitor.note_failure("fenced")
        monitor.note_failure("fenced")
        assert monitor.state is NodeHealth.DEGRADED
        for _ in range(10):  # 2.0 * 0.9^10 ≈ 0.7 < recover_score
            monitor.beat(answered=True)
        assert monitor.state is NodeHealth.HEALTHY

    def test_suspect_demotes_to_degraded_when_answering(self, monitor):
        """The hysteresis band: a suspect node that answers again drops
        one rung; full recovery waits for the score to decay."""
        for _ in range(3):
            monitor.note_failure("quarantined")
        assert monitor.state is NodeHealth.SUSPECT
        # decay into the band (recover_score, suspect_score)
        while monitor.score >= monitor.policy.suspect_score:
            monitor.beat(answered=True)
        assert monitor.state is NodeHealth.DEGRADED

    def test_hold_between_thresholds(self):
        policy = HealthPolicy(degrade_score=2.0, recover_score=1.0)
        monitor = NodeHealthMonitor("n", policy)
        monitor.note_failure("fenced")
        monitor.note_failure("deadline")  # 1.5: between recover and degrade
        assert monitor.state is NodeHealth.HEALTHY  # never got above 2.0

    def test_migration_is_not_the_nodes_failure(self, monitor):
        monitor.note_failure("migrated")
        assert monitor.score == ACTION_WEIGHTS["migrated"] == 0.0
        assert monitor.state is NodeHealth.HEALTHY

    def test_unknown_action_gets_default_weight(self, monitor):
        monitor.note_failure("something_new")
        assert monitor.score == 0.5


class TestFailureDomainScore:
    def test_healthy_is_raw_score(self, monitor):
        monitor.note_failure("suppressed")
        assert monitor.failure_domain_score() == pytest.approx(0.1)

    def test_state_surcharges_stack(self, monitor):
        monitor.note_failure("fenced")
        monitor.note_failure("fenced")
        assert monitor.state is NodeHealth.DEGRADED
        assert monitor.failure_domain_score() == pytest.approx(2.0 + 1.0)

    def test_down_is_infinite(self, monitor):
        monitor.force_down("dead")
        assert monitor.failure_domain_score() == float("inf")

    def test_transitions_are_recorded(self, monitor):
        monitor.beat(answered=False)
        monitor.beat(answered=True)
        states = [(t.previous, t.current) for t in monitor.transitions]
        assert (NodeHealth.HEALTHY, NodeHealth.SUSPECT) in states
