"""Property: migration is invisible to the migrated tenant.

For *any* random workload and *any* migration point within it, the
tenant's observable results — device-to-host bytes after every launch
— and the device-modelled execution cycles of every launch are
bit-identical to a control run in which the tenant never migrated.
The subject run pads the target node first so the restored partition
lands at a *different* base (a non-zero translation delta): the
property covers the address-virtualization layer, not just the copy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import GuardianCluster
from repro.ptx.builder import build_module
from repro.ptx.emitter import emit_module

from tests.conftest import saxpy_kernel

PARTITION = 1 << 20
LANES = 32


def _saxpy_ptx():
    return emit_module(build_module([saxpy_kernel()]))


class _Workload:
    """A deterministic launch script driven by one integer seed."""

    def __init__(self, seed: int, steps: int):
        rng = np.random.default_rng(seed)
        self.scales = rng.uniform(0.5, 4.0, size=steps)\
            .astype(np.float32)
        self.xs = rng.uniform(-2.0, 2.0, size=LANES)\
            .astype(np.float32)

    def run(self, client, migrate_after=None, migrate=None):
        """Run the script; call ``migrate()`` after step
        ``migrate_after``. Returns the observables: the output buffer
        bytes after every launch."""
        handles = client.load_module_ptx(_saxpy_ptx())
        buf = client.malloc(512)
        client.memcpy_h2d(buf + 256, self.xs.tobytes())
        client.memset(buf, 0, 128)
        observed = []
        for step, scale in enumerate(self.scales):
            client.launch_kernel(
                handles["saxpy"], (1, 1, 1), (LANES, 1, 1),
                [buf, buf + 256, float(scale), LANES])
            observed.append(client.memcpy_d2h(buf, 128))
            if migrate_after == step and migrate is not None:
                migrate()
                # Post-move smoke inside the script: fresh allocation
                # on the new node interleaves with migrated state.
                scratch = client.malloc(256)
                client.memset(scratch, 7, 256)
                client.free(scratch)
        return observed


def _launch_cycles(cluster):
    """Every node's modelled kernel executions, in launch order."""
    results = []
    for node in cluster.nodes:
        results.extend(
            (r.kernel_name, r.duration_cycles, r.instructions)
            for r in node.device.metrics.launch_results
        )
    return results


def _build(record_launches=True):
    cluster = GuardianCluster(2)
    if record_launches:
        for node in cluster.nodes:
            node.device._keep_launch_results = True
    return cluster


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    steps=st.integers(min_value=2, max_value=6),
    migrate_after=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_migrated_run_is_bit_identical_to_control(
        seed, steps, migrate_after):
    migrate_after = min(migrate_after, steps - 2)
    workload = _Workload(seed, steps)

    control = _build()
    control_session = control.attach("tenant", PARTITION)
    control_observed = workload.run(control_session.client)
    control.synchronize()

    subject = _build()
    # Pad the target so the restored base differs from the origin.
    subject.attach("pad", 1 << 21)
    subject_session = subject.attach("tenant", PARTITION)
    source = subject_session.node
    target = next(n for n in subject.nodes if n is not source)

    def migrate():
        assert subject.migrate("tenant", target=target,
                               reason="property")
        assert subject_session.client.delta != 0

    subject_observed = workload.run(
        subject_session.client, migrate_after=migrate_after,
        migrate=migrate)
    subject.synchronize()

    assert subject_session.client.migrations == 1
    assert subject_observed == control_observed
    # Modelled execution cycles match launch-for-launch. The subject's
    # pad tenant launched nothing, so the device logs contain exactly
    # the workload's kernels on both sides.
    assert _launch_cycles(subject) == _launch_cycles(control)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_double_migration_round_trip(seed):
    """There and back again: two migrations return the tenant to a
    zero delta, still bit-identical."""
    workload = _Workload(seed, 3)

    control = _build(record_launches=False)
    control_observed = workload.run(
        control.attach("tenant", PARTITION).client)

    subject = _build(record_launches=False)
    session = subject.attach("tenant", PARTITION)
    origin = session.node

    def there_and_back():
        assert subject.migrate("tenant", reason="there")
        assert subject.migrate("tenant", target=origin, reason="back")
        assert session.client.delta == 0

    observed = workload.run(session.client, migrate_after=0,
                            migrate=there_and_back)
    assert session.client.migrations == 2
    assert observed == control_observed
