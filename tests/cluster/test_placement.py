"""Admission placement: bin-packing with failure-domain penalties."""

import pytest

from repro.cluster import ClusterConfig, GuardianCluster, PlacementPolicy
from repro.cluster.health import NodeHealth


@pytest.fixture
def cluster():
    return GuardianCluster(3)


class TestEligibility:
    def test_crashed_node_excluded(self, cluster):
        cluster.node("node0").crash("test")
        node = cluster.config.placement.choose(cluster.nodes, 1 << 20)
        assert node.node_id != "node0"

    def test_suspect_node_excluded(self, cluster):
        cluster.node("node0").monitor.beat(answered=False)
        assert cluster.node("node0").monitor.state is NodeHealth.SUSPECT
        assert cluster.config.placement.score(
            cluster.node("node0"), 1 << 20) is None

    def test_full_node_excluded(self, cluster):
        total = cluster.node("node0").server.allocator.total_bytes
        cluster.attach("hog", total)
        hog_node = cluster.tenants["hog"].node
        assert cluster.config.placement.score(hog_node, 1 << 20) is None

    def test_no_eligible_node_returns_none(self, cluster):
        for node in cluster.nodes:
            node.crash("test")
        assert cluster.config.placement.choose(cluster.nodes, 1 << 20) is None

    def test_exclude_parameter(self, cluster):
        chosen = cluster.config.placement.choose(
            cluster.nodes, 1 << 20,
            exclude=("node0", "node1"),
        )
        assert chosen.node_id == "node2"


class TestCostFunction:
    def test_deterministic_tie_break_on_node_id(self, cluster):
        # Identical empty nodes: lowest id wins.
        assert cluster.config.placement.choose(
            cluster.nodes, 1 << 20).node_id == "node0"

    def test_pack_prefers_fuller_node(self, cluster):
        cluster.attach("a", 1 << 20)
        assert cluster.tenants["a"].node.node_id == "node0"
        # pack=True: the next tenant joins node0 rather than denting node1
        cluster.attach("b", 1 << 20)
        assert cluster.tenants["b"].node.node_id == "node0"

    def test_spread_prefers_emptier_node(self):
        cluster = GuardianCluster(
            3, config=ClusterConfig(
                placement=PlacementPolicy(pack=False)),
        )
        cluster.attach("a", 1 << 20)
        cluster.attach("b", 1 << 20)
        homes = {cluster.tenants["a"].node.node_id,
                 cluster.tenants["b"].node.node_id}
        assert homes == {"node0", "node1"}

    def test_failure_penalty_steers_away(self, cluster):
        # node0 would win the tie-break, but give it failure history.
        monitor = cluster.node("node0").monitor
        monitor.note_failure("quarantined")
        cluster.attach("a", 1 << 20)
        assert cluster.tenants["a"].node.node_id == "node1"

    def test_zero_penalty_ignores_history(self):
        cluster = GuardianCluster(
            2, config=ClusterConfig(
                placement=PlacementPolicy(failure_penalty=0.0)),
        )
        cluster.node("node0").monitor.note_failure("quarantined")
        cluster.attach("a", 1 << 20)
        assert cluster.tenants["a"].node.node_id == "node0"

    def test_admission_raises_when_fleet_full(self, cluster):
        from repro.errors import PartitionError

        total = cluster.node("node0").server.allocator.total_bytes
        for index in range(3):
            cluster.attach(f"hog{index}", total)
        with pytest.raises(PartitionError):
            cluster.attach("late", 1 << 20)
