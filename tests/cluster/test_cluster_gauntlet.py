"""The cluster gauntlet: drive a node down mid-workload, survive it.

CI shards this over ``GUARDIAN_NODE_FAULT_SEED`` 0–4 (one job each);
run locally without the variable and all five seeds execute. The
invariant under every seed: when :func:`FaultPlan.node_chaos` kills a
node, every tenant it hosted is either live-migrated (bytes intact,
still serving) or cleanly quarantined (scrubbed, recorded) — and
tenants on *other* nodes never notice.
"""

import os

import pytest

from repro.cluster import ClusterConfig, GuardianCluster, PlacementPolicy
from repro.errors import ReproError
from repro.faults.plan import FaultPlan

PARTITION = 1 << 20
TENANTS = ("a", "b", "c")
NODES = ("node0", "node1", "node2")
BEATS = 24

_env_seed = os.environ.get("GUARDIAN_NODE_FAULT_SEED")
SEEDS = [int(_env_seed)] if _env_seed is not None else list(range(5))


def run_gauntlet(seed: int):
    plan = FaultPlan.node_chaos(seed=seed, nodes=NODES, tenants=TENANTS)
    cluster = GuardianCluster(
        3,
        config=ClusterConfig(placement=PlacementPolicy(pack=False)),
        fault_plan=plan,
    )
    sessions = {}
    for name in TENANTS:
        session = cluster.attach(name, PARTITION)
        ptr = session.client.malloc(4096)
        session.client.memcpy_h2d(ptr, name.encode() * 4096)
        sessions[name] = (session, ptr)
    homes = {name: s.node.node_id for name, (s, _) in sessions.items()}
    for _ in range(BEATS):
        cluster.tick()
    return cluster, sessions, homes


@pytest.mark.parametrize("seed", SEEDS)
def test_node_loss_never_disrupts_bystanders(seed):
    cluster, sessions, homes = run_gauntlet(seed)
    downed = {n.node_id for n in cluster.nodes if not n.monitor.alive}
    assert downed, "node_chaos must take a node down"
    for name, (session, ptr) in sessions.items():
        if homes[name] not in downed:
            # Bystander: same node, same bytes, still serving.
            assert session.node.node_id == homes[name]
            assert session.client.migrations == 0
            assert session.client.memcpy_d2h(ptr, 4096) \
                == name.encode() * 4096


@pytest.mark.parametrize("seed", SEEDS)
def test_victims_migrated_or_cleanly_quarantined(seed):
    cluster, sessions, homes = run_gauntlet(seed)
    downed = {n.node_id for n in cluster.nodes if not n.monitor.alive}
    victims = [name for name in TENANTS if homes[name] in downed]
    migrated = {r.tenant for r in cluster.migrations if r.success}
    evicted = {e.tenant for e in cluster.evictions}
    for name in victims:
        assert (name in migrated) ^ (name in evicted), (
            f"{name} neither migrated nor evicted (seed {seed})"
        )
        session, ptr = sessions[name]
        if name in migrated:
            # Moved: serving from a live node, bytes intact.
            assert session.node.node_id not in downed
            assert session.client.memcpy_d2h(ptr, 4096) \
                == name.encode() * 4096
        else:
            # Evicted: unreachable, but *cleanly* — a recorded
            # quarantine, not a hang or a silent wrong answer.
            with pytest.raises(ReproError):
                session.client.memcpy_d2h(ptr, 4096)


@pytest.mark.parametrize("seed", SEEDS)
def test_down_node_stops_taking_load(seed):
    cluster, _, _ = run_gauntlet(seed)
    downed = {n.node_id for n in cluster.nodes if not n.monitor.alive}
    late = cluster.attach("late", PARTITION)
    assert late.node.node_id not in downed
    cluster.detach("late")


@pytest.mark.parametrize("seed", SEEDS)
def test_gauntlet_is_deterministic(seed):
    first, _, _ = run_gauntlet(seed)
    second, _, _ = run_gauntlet(seed)
    assert first.health_summary() == second.health_summary()
    assert [(r.tenant, r.source, r.target, r.success)
            for r in first.migrations] \
        == [(r.tenant, r.source, r.target, r.success)
            for r in second.migrations]
    assert [(e.tenant, e.node) for e in first.evictions] \
        == [(e.tenant, e.node) for e in second.evictions]
