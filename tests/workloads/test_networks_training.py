"""Model zoo and training loop tests."""

import numpy as np
import pytest

from repro.workloads.frameworks import LibraryBundle, evaluate, train
from repro.workloads.frameworks.datasets import dataset_for
from repro.workloads.frameworks.networks import (
    CAFFE_MODELS,
    MODEL_ZOO,
    PYTORCH_MODELS,
)


@pytest.fixture
def libs(native_stack):
    """Sampled execution: fast, fine for shape/inventory checks."""
    device, _, runtime = native_stack
    device.max_blocks_per_launch = 8
    return LibraryBundle.create(runtime)


@pytest.fixture
def libs_exact(native_stack):
    """Full execution: required when numerical convergence matters."""
    _, _, runtime = native_stack
    return LibraryBundle.create(runtime)


class TestZooInventory:
    def test_all_paper_models_present(self):
        expected = {"lenet", "siamese", "cifar10", "cv", "rnn",
                    "googlenet", "alexnet", "caffenet", "vgg11",
                    "mobilenetv2", "resnet50"}
        assert expected == set(MODEL_ZOO)

    def test_framework_split_covers_zoo(self):
        assert set(CAFFE_MODELS) | set(PYTORCH_MODELS) == set(MODEL_ZOO)
        assert not set(CAFFE_MODELS) & set(PYTORCH_MODELS)

    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_models_construct_with_parameters(self, libs, name):
        model = MODEL_ZOO[name](libs)
        assert model.parameter_count() > 0
        assert model.num_classes == 10


class TestForwardShapes:
    @pytest.mark.parametrize("name", ["lenet", "cifar10", "cv",
                                      "alexnet", "caffenet", "vgg11",
                                      "resnet50", "mobilenetv2",
                                      "googlenet"])
    def test_logits_shape(self, libs, name):
        from repro.workloads.frameworks.tensor import DeviceTensor

        model = MODEL_ZOO[name](libs)
        data = dataset_for(model.input_shape, samples=4)
        batch = next(data.batches(4))
        x = DeviceTensor.from_host(libs.runtime, batch.images)
        logits = model.forward(x)
        assert logits.shape == (4, 10)
        values = logits.download()
        assert np.isfinite(values).all()

    def test_rnn_logits(self, libs):
        from repro.workloads.frameworks.tensor import DeviceTensor

        model = MODEL_ZOO["rnn"](libs)
        data = dataset_for(model.input_shape, samples=4)
        batch = next(data.batches(4))
        x = DeviceTensor.from_host(libs.runtime, batch.images)
        logits = model.forward(x)
        assert logits.shape == (4, 10)


class TestTraining:
    def test_lenet_loss_decreases(self, libs_exact):
        libs = libs_exact
        model = MODEL_ZOO["lenet"](libs)
        data = dataset_for(model.input_shape, samples=16)
        result = train(model, data, epochs=3, batch_size=8, lr=0.1)
        assert result.batches == 6
        assert result.final_loss < result.first_loss

    def test_rnn_trains_output_layer(self, libs_exact):
        libs = libs_exact
        model = MODEL_ZOO["rnn"](libs)
        data = dataset_for(model.input_shape, samples=16)
        result = train(model, data, epochs=4, batch_size=8, lr=0.2)
        assert result.final_loss < result.first_loss

    def test_siamese_pair_training(self, libs):
        model = MODEL_ZOO["siamese"](libs)
        data = dataset_for(model.input_shape, samples=16)
        result = train(model, data, epochs=2, batch_size=8, lr=0.05)
        assert result.batches == 4
        assert np.isfinite(result.losses).all()

    def test_evaluate_returns_accuracy(self, libs):
        model = MODEL_ZOO["lenet"](libs)
        data = dataset_for(model.input_shape, samples=16)
        result = evaluate(model, data, batch_size=8)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.samples == 16

    def test_training_beats_chance(self, libs_exact):
        libs = libs_exact
        model = MODEL_ZOO["lenet"](libs)
        data = dataset_for(model.input_shape, samples=24)
        train(model, data, epochs=4, batch_size=8, lr=0.1)
        result = evaluate(model, data, batch_size=8)
        assert result.accuracy > 0.2  # chance is 0.1
