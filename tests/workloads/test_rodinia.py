"""Rodinia application tests (correctness + call-stream properties)."""

import numpy as np
import pytest

from repro.workloads.rodinia import (
    RODINIA_APPS,
    GaussianApp,
    HotspotApp,
    LavaMDApp,
    ParticleFilterApp,
    rodinia_fatbin,
)


class TestGaussian:
    def test_solves_system(self, native_stack):
        _, _, runtime = native_stack
        app = GaussianApp(runtime, size=12)
        app.run()
        assert app.verify() < 1e-2

    def test_kernel_stream_shape(self, native_stack):
        """2*(size-1) kernel launches per solve — the launch-heavy
        pattern that stresses sharing servers (§6.1)."""
        device, _, runtime = native_stack
        app = GaussianApp(runtime, size=10)
        before = device.metrics.kernels_launched
        app.run()
        assert device.metrics.kernels_launched - before == 2 * 9


class TestHotspot:
    def test_matches_numpy_stencil(self, native_stack):
        _, _, runtime = native_stack
        app = HotspotApp(runtime, rows=10, cols=10, iterations=4)
        app.run()
        assert np.allclose(app.result, app.reference(), atol=1e-2)

    def test_temperature_stays_finite(self, native_stack):
        _, _, runtime = native_stack
        app = HotspotApp(runtime, rows=12, cols=12, iterations=8)
        app.run()
        assert np.isfinite(app.result).all()


class TestLavaMD:
    def test_forces_computed(self, native_stack):
        _, _, runtime = native_stack
        app = LavaMDApp(runtime, particles=64, box_size=16)
        app.run()
        assert app.forces.shape == (64,)
        assert np.isfinite(app.forces).all()
        assert np.abs(app.forces).max() > 0

    def test_box_locality(self, native_stack):
        """Forces depend only on particles in the same box: editing a
        foreign box must not change a particle's force."""
        _, _, runtime = native_stack
        app_a = LavaMDApp(runtime, particles=64, box_size=16, seed=3)
        app_a.run()
        app_b = LavaMDApp(runtime, particles=64, box_size=16, seed=3)
        app_b._pos = app_b._pos.copy()
        app_b._pos[48:] += 10.0  # box 3 only
        app_b.run()
        assert np.allclose(app_a.forces[:16], app_b.forces[:16])


class TestParticleFilter:
    def test_estimate_converges_toward_observation(self, native_stack):
        _, _, runtime = native_stack
        app = ParticleFilterApp(runtime, particles=128, steps=6)
        app.run()
        # Resampling concentrates particles near the observation 0.4.
        assert abs(app.estimate - 0.4) < 0.5

    def test_host_device_interplay(self, native_stack):
        """The app's CDF step round-trips through the host — D2H and
        H2D counts must both grow per step."""
        device, _, runtime = native_stack
        app = ParticleFilterApp(runtime, particles=64, steps=3)
        h2d_before = device.metrics.h2d_copies
        d2h_before = device.metrics.d2h_copies
        app.run()
        assert device.metrics.h2d_copies - h2d_before >= 3
        assert device.metrics.d2h_copies - d2h_before >= 3


class TestSuitePackaging:
    def test_registry_complete(self):
        assert set(RODINIA_APPS) == {"gaussian", "hotspot", "lavamd",
                                     "particle"}

    def test_fatbin_has_ptx(self):
        fatbin = rodinia_fatbin()
        assert fatbin.ptx_entries()
        names = set()
        from repro.ptx import parse_module

        for entry in fatbin.ptx_entries():
            names.update(parse_module(entry.ptx_text()).kernels)
        assert "rodinia_fan1" in names
        assert "rodinia_hotspot" in names

    def test_apps_work_under_guardian(self, guardian_system):
        from tests.conftest import make_guardian_tenant

        _, server = guardian_system
        _, runtime = make_guardian_tenant(server, "rod", 1 << 22)
        app = GaussianApp(runtime, size=10)
        app.run()
        assert app.verify() < 1e-2
