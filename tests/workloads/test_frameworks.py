"""Mini-framework tests: tensors, layers, datasets."""

import numpy as np
import pytest

from repro.workloads.frameworks import LibraryBundle
from repro.workloads.frameworks.datasets import (
    SyntheticImages,
    dataset_for,
    mnist_like,
)
from repro.workloads.frameworks.layers import (
    Conv2D,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)
from repro.workloads.frameworks.tensor import DeviceTensor


@pytest.fixture
def libs(native_stack):
    _, _, runtime = native_stack
    return LibraryBundle.create(runtime)


class TestDeviceTensor:
    def test_roundtrip(self, libs):
        data = np.random.RandomState(0).randn(3, 4).astype(np.float32)
        tensor = DeviceTensor.from_host(libs.runtime, data)
        assert np.array_equal(tensor.download(), data)

    def test_u32_dtype_inferred(self, libs):
        labels = np.array([1, 2, 3], dtype=np.uint32)
        tensor = DeviceTensor.from_host(libs.runtime, labels)
        assert tensor.dtype == "u32"
        assert np.array_equal(tensor.download(), labels)

    def test_reshape_shares_memory(self, libs):
        data = np.arange(12, dtype=np.float32)
        tensor = DeviceTensor.from_host(libs.runtime, data)
        view = tensor.reshape((3, 4))
        assert view.address == tensor.address
        assert not view.owns

    def test_bad_reshape_rejected(self, libs):
        tensor = DeviceTensor.alloc(libs.runtime, (4,))
        with pytest.raises(ValueError):
            tensor.reshape((5,))

    def test_upload_size_checked(self, libs):
        tensor = DeviceTensor.alloc(libs.runtime, (4,))
        with pytest.raises(ValueError):
            tensor.upload(np.zeros(5, dtype=np.float32))

    def test_free_releases(self, libs):
        tensor = DeviceTensor.alloc(libs.runtime, (1024,))
        tensor.free()
        assert tensor.address == 0


class TestLayersAgainstNumpy:
    def test_linear_forward(self, libs):
        layer = Linear(libs, 6, 4)
        x = np.random.RandomState(1).randn(3, 6).astype(np.float32)
        x_dev = DeviceTensor.from_host(libs.runtime, x)
        y = layer.forward(x_dev).download()
        w = layer.w.download()
        b = layer.b.download()
        assert np.allclose(y, x @ w + b, atol=1e-3)

    def test_linear_backward_gradients(self, libs):
        layer = Linear(libs, 5, 3)
        rng = np.random.RandomState(2)
        x = rng.randn(4, 5).astype(np.float32)
        dy = rng.randn(4, 3).astype(np.float32)
        x_dev = DeviceTensor.from_host(libs.runtime, x)
        layer.forward(x_dev)
        dx = layer.backward(
            DeviceTensor.from_host(libs.runtime, dy)).download()
        w = layer.w.download()
        assert np.allclose(dx, dy @ w.T, atol=1e-3)
        assert np.allclose(layer.dw.download(), x.T @ dy, atol=1e-3)
        assert np.allclose(layer.db.download(), dy.sum(axis=0),
                           atol=1e-3)

    def test_conv_shapes(self, libs):
        layer = Conv2D(libs, cin=2, cout=4, kernel=3)
        x = DeviceTensor.from_host(
            libs.runtime,
            np.random.RandomState(3).randn(2, 2, 8, 8).astype(
                np.float32))
        y = layer.forward(x)
        assert y.shape == (2, 4, 6, 6)
        dx = layer.backward(y)
        assert dx.shape == x.shape

    def test_pool_relu_flatten_pipeline(self, libs):
        x = np.random.RandomState(4).randn(2, 3, 4, 4).astype(np.float32)
        x_dev = DeviceTensor.from_host(libs.runtime, x)
        pool = MaxPool2D(libs, 2)
        relu = ReLU(libs)
        flat = Flatten()
        out = flat.forward(relu.forward(pool.forward(x_dev)))
        assert out.shape == (2, 12)
        ref = np.maximum(
            x.reshape(2, 3, 2, 2, 2, 2).max(axis=(3, 5)), 0
        ).reshape(2, 12)
        assert np.allclose(out.download(), ref)

    def test_loss_head(self, libs):
        head = SoftmaxCrossEntropy(libs)
        logits = np.random.RandomState(5).randn(4, 10).astype(np.float32)
        labels = np.array([0, 3, 7, 9], dtype=np.uint32)
        loss = head.forward(
            DeviceTensor.from_host(libs.runtime, logits),
            DeviceTensor.from_host(libs.runtime, labels),
        )
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs = exp / exp.sum(axis=1, keepdims=True)
        ref = float(-np.log(probs[np.arange(4), labels]).mean())
        assert loss == pytest.approx(ref, rel=1e-2)

    def test_workspace_cached_across_batches(self, libs):
        layer = ReLU(libs)
        x = DeviceTensor.from_host(
            libs.runtime, np.ones((2, 4), dtype=np.float32))
        first = layer.forward(x)
        second = layer.forward(x)
        assert first.address == second.address  # reused workspace


class TestDatasets:
    def test_deterministic(self):
        a = SyntheticImages(16, (1, 8, 8), seed=5)
        b = SyntheticImages(16, (1, 8, 8), seed=5)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_batching_drops_ragged_tail(self):
        data = mnist_like(samples=20)
        batches = list(data.batches(8))
        assert len(batches) == 2
        assert all(batch.size == 8 for batch in batches)

    def test_epochs_multiply_batches(self):
        data = mnist_like(samples=16)
        assert len(list(data.batches(8, epochs=3))) == 6

    def test_labels_in_range(self):
        data = SyntheticImages(64, (3, 8, 8), classes=10, seed=1)
        assert data.labels.max() < 10

    def test_dataset_for_rnn_shape(self):
        data = dataset_for((6, 12), samples=8)
        batch = next(data.batches(4))
        assert batch.images.shape == (4, 6, 12)

    def test_signal_is_learnable(self):
        """Same-class images correlate more than cross-class ones."""
        data = SyntheticImages(200, (1, 12, 12), seed=3)
        flat = data.images.reshape(200, -1)
        same, cross = [], []
        for i in range(0, 60):
            for j in range(i + 1, 60):
                corr = float(np.dot(flat[i], flat[j]))
                if data.labels[i] == data.labels[j]:
                    same.append(corr)
                else:
                    cross.append(corr)
        assert np.mean(same) > np.mean(cross)
