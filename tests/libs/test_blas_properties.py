"""Property-based BLAS tests against numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.executor import KernelExecutor, compile_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.libs.kernels import blas
from repro.ptx.builder import build_module

SPEC = QUADRO_RTX_A4000
BASE = 0x7F_A000_0000_00

_MODULE = build_module(blas.all_kernels())
_COMPILED = {
    name: compile_kernel(kernel, SPEC)
    for name, kernel in _MODULE.kernels.items()
}

dims = st.integers(min_value=1, max_value=9)


def fresh_executor():
    memory = GlobalMemory(1 << 22)
    return memory, KernelExecutor(SPEC, memory)


class TestGemmProperty:
    @given(m=dims, n=dims, k=dims, seed=st.integers(0, 2**16),
           trans_a=st.booleans(), trans_b=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_gemm_matches_numpy(self, m, n, k, seed, trans_a, trans_b):
        rng = np.random.RandomState(seed)
        a = rng.randn(m, k).astype(np.float32)
        b = rng.randn(k, n).astype(np.float32)
        memory, executor = fresh_executor()
        a_store = a.T.copy() if trans_a else a
        b_store = b.T.copy() if trans_b else b
        memory.write_array(BASE, a_store.ravel())
        memory.write_array(BASE + 8192, b_store.ravel())
        sa0, sa1 = (1, m) if trans_a else (k, 1)
        sb0, sb1 = (1, k) if trans_b else (n, 1)
        executor.launch(
            _COMPILED["cublas_sgemm"], (max(1, -(-m * n // 64)), 1, 1),
            (64, 1, 1),
            [BASE + 16384, BASE, BASE + 8192, m, n, k,
             sa0, sa1, sb0, sb1, 1.0, 0.0],
        )
        got = memory.read_array(BASE + 16384, m * n).reshape(m, n)
        assert np.allclose(got, a @ b, atol=1e-3, rtol=1e-3)

    @given(m=st.integers(1, 20), n=st.integers(1, 20),
           k=st.integers(1, 20), seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_tiled_gemm_matches_numpy(self, m, n, k, seed):
        rng = np.random.RandomState(seed)
        a = rng.randn(m, k).astype(np.float32)
        b = rng.randn(k, n).astype(np.float32)
        memory, executor = fresh_executor()
        memory.write_array(BASE, a.ravel())
        memory.write_array(BASE + 8192, b.ravel())
        tile = blas.GEMM_TILE
        grid = (max(1, -(-n // tile)), max(1, -(-m // tile)), 1)
        executor.launch(
            _COMPILED["cublas_sgemm_tiled"], grid, (tile, tile, 1),
            [BASE + 16384, BASE, BASE + 8192, m, n, k],
        )
        got = memory.read_array(BASE + 16384, m * n).reshape(m, n)
        assert np.allclose(got, a @ b, atol=1e-2, rtol=1e-2)


class TestReductionsProperty:
    @given(n=st.integers(1, 400), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_isamax_matches_numpy(self, n, seed):
        values = np.random.RandomState(seed).randn(n).astype(np.float32)
        memory, executor = fresh_executor()
        memory.write_array(BASE + 8192, values)
        blocks = max(1, -(-n // blas.REDUCTION_BLOCK))
        executor.launch(
            _COMPILED["cublas_isamax_partial"], (blocks, 1, 1),
            (blas.REDUCTION_BLOCK, 1, 1),
            [BASE, BASE + 4096, BASE + 8192, n],
        )
        partial_values = memory.read_array(BASE, blocks)
        partial_indices = memory.read_array(BASE + 4096, blocks,
                                            dtype="b32")
        winner = int(partial_indices[int(partial_values.argmax())])
        expected = np.abs(values)
        # Ties may resolve to any argmax of equal magnitude.
        assert expected[winner] == pytest.approx(float(expected.max()),
                                                 rel=1e-5)

    @given(n=st.integers(1, 300), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_sdot_matches_numpy(self, n, seed):
        rng = np.random.RandomState(seed)
        xs = rng.randn(n).astype(np.float32)
        ys = rng.randn(n).astype(np.float32)
        memory, executor = fresh_executor()
        memory.write_array(BASE + 8192, xs)
        memory.write_array(BASE + 16384, ys)
        blocks = max(1, -(-n // blas.REDUCTION_BLOCK))
        executor.launch(
            _COMPILED["cublas_sdot_partial"], (blocks, 1, 1),
            (blas.REDUCTION_BLOCK, 1, 1),
            [BASE, BASE + 8192, BASE + 16384, n],
        )
        partials = memory.read_array(BASE, blocks)
        assert float(partials.sum()) == pytest.approx(
            float(xs @ ys), rel=1e-2, abs=1e-2)
