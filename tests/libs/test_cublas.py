"""cuBLAS library tests (numerics + closed-source properties)."""

import numpy as np
import pytest

from repro.libs.cublas import CuBLAS, cublas_fatbin

from tests.conftest import download_array, upload_array


@pytest.fixture
def blas(native_stack):
    _, _, runtime = native_stack
    return runtime, CuBLAS(runtime)


class TestLevel1:
    def test_saxpy(self, blas):
        runtime, lib = blas
        xs = np.arange(100, dtype=np.float32)
        ys = np.ones(100, dtype=np.float32)
        x_buf, y_buf = upload_array(runtime, xs), upload_array(runtime, ys)
        lib.saxpy(100, 2.0, x_buf, y_buf)
        assert np.allclose(download_array(runtime, y_buf, 100),
                           2.0 * xs + 1.0)

    def test_sscal(self, blas):
        runtime, lib = blas
        xs = np.arange(50, dtype=np.float32)
        buf = upload_array(runtime, xs)
        lib.sscal(50, -0.5, buf)
        assert np.allclose(download_array(runtime, buf, 50), -0.5 * xs)

    def test_scopy(self, blas):
        runtime, lib = blas
        xs = np.random.RandomState(0).randn(64).astype(np.float32)
        src = upload_array(runtime, xs)
        dst = runtime.cudaMalloc(256)
        lib.scopy(64, src, dst)
        assert np.array_equal(download_array(runtime, dst, 64), xs)

    def test_sdot(self, blas):
        runtime, lib = blas
        rng = np.random.RandomState(1)
        xs = rng.randn(200).astype(np.float32)
        ys = rng.randn(200).astype(np.float32)
        x_buf, y_buf = upload_array(runtime, xs), upload_array(runtime, ys)
        assert lib.sdot(200, x_buf, y_buf) == pytest.approx(
            float(xs @ ys), rel=1e-3)

    def test_isamax(self, blas):
        runtime, lib = blas
        xs = np.random.RandomState(2).randn(300).astype(np.float32)
        xs[217] = -50.0
        buf = upload_array(runtime, xs)
        assert lib.isamax(300, buf) == 217

    def test_isamax_performs_implicit_calls(self, blas):
        """The paper's cublasIsamax example: one library call triggers
        several hidden runtime calls (§1, §4.1)."""
        runtime, lib = blas
        xs = np.random.RandomState(3).randn(100).astype(np.float32)
        buf = upload_array(runtime, xs)
        calls_before = dict(runtime.profile.calls)
        lib.isamax(100, buf)
        delta = {
            api: runtime.profile.calls.get(api, 0)
            - calls_before.get(api, 0)
            for api in ("cudaMalloc", "cudaLaunchKernel",
                        "cudaMemcpyD2H", "cudaFree")
        }
        assert delta["cudaMalloc"] == 2
        assert delta["cudaLaunchKernel"] == 1
        assert delta["cudaMemcpyD2H"] == 2
        assert delta["cudaFree"] == 2


class TestGemm:
    def _matrices(self, m, n, k, seed=0):
        rng = np.random.RandomState(seed)
        return (rng.randn(m, k).astype(np.float32),
                rng.randn(k, n).astype(np.float32))

    def test_plain(self, blas):
        runtime, lib = blas
        a, b = self._matrices(5, 7, 6)
        a_buf = upload_array(runtime, a)
        b_buf = upload_array(runtime, b)
        c_buf = runtime.cudaMalloc(5 * 7 * 4)
        lib.sgemm(5, 7, 6, a_buf, b_buf, c_buf)
        c = download_array(runtime, c_buf, 35).reshape(5, 7)
        assert np.allclose(c, a @ b, atol=1e-4)

    def test_trans_a(self, blas):
        runtime, lib = blas
        a, b = self._matrices(5, 7, 6, seed=1)
        a_buf = upload_array(runtime, a.T.copy())  # stored (k, m)
        b_buf = upload_array(runtime, b)
        c_buf = runtime.cudaMalloc(5 * 7 * 4)
        lib.sgemm(5, 7, 6, a_buf, b_buf, c_buf, trans_a=True)
        c = download_array(runtime, c_buf, 35).reshape(5, 7)
        assert np.allclose(c, a @ b, atol=1e-4)

    def test_trans_b(self, blas):
        runtime, lib = blas
        a, b = self._matrices(4, 6, 5, seed=2)
        a_buf = upload_array(runtime, a)
        b_buf = upload_array(runtime, b.T.copy())  # stored (n, k)
        c_buf = runtime.cudaMalloc(4 * 6 * 4)
        lib.sgemm(4, 6, 5, a_buf, b_buf, c_buf, trans_b=True)
        c = download_array(runtime, c_buf, 24).reshape(4, 6)
        assert np.allclose(c, a @ b, atol=1e-4)

    def test_alpha_beta(self, blas):
        runtime, lib = blas
        a, b = self._matrices(3, 3, 3, seed=3)
        c0 = np.ones((3, 3), dtype=np.float32)
        a_buf, b_buf = upload_array(runtime, a), upload_array(runtime, b)
        c_buf = upload_array(runtime, c0)
        lib.sgemm(3, 3, 3, a_buf, b_buf, c_buf, alpha=2.0, beta=0.5)
        c = download_array(runtime, c_buf, 9).reshape(3, 3)
        assert np.allclose(c, 2.0 * (a @ b) + 0.5, atol=1e-4)

    def test_tiled_matches_strided(self, blas):
        runtime, lib = blas
        a, b = self._matrices(11, 9, 13, seed=4)
        a_buf, b_buf = upload_array(runtime, a), upload_array(runtime, b)
        c_buf = runtime.cudaMalloc(11 * 9 * 4)
        lib.sgemm_tiled(11, 9, 13, a_buf, b_buf, c_buf)
        c = download_array(runtime, c_buf, 99).reshape(11, 9)
        assert np.allclose(c, a @ b, atol=1e-3)


class TestClosedSourceProperties:
    def test_fatbin_has_no_host_source(self):
        fatbin = cublas_fatbin()
        assert fatbin.ptx_entries()  # PTX present for patching
        for entry in fatbin.entries:
            assert b"def " not in entry.payload  # no Python source

    def test_library_touches_export_tables(self, native_stack):
        _, _, runtime = native_stack
        CuBLAS(runtime)
        assert runtime.profile.calls.get("cudaGetExportTable", 0) >= 2

    def test_library_dlopens_driver(self, native_stack):
        _, backend, runtime = native_stack
        CuBLAS(runtime)
        from repro.runtime.interpose import LIBCUDA

        assert any(soname == LIBCUDA
                   for soname, _ in runtime.loader.resolutions)
