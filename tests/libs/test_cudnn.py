"""cuDNN library tests against numpy references."""

import numpy as np
import pytest

from repro.libs.cudnn import CuDNN

from tests.conftest import download_array, upload_array


@pytest.fixture
def dnn(native_stack):
    _, _, runtime = native_stack
    return runtime, CuDNN(runtime)


def conv2d_ref(x, w, bias):
    n, cin, h, win = x.shape
    cout, _, kh, kw = w.shape
    oh, ow = h - kh + 1, win - kw + 1
    out = np.zeros((n, cout, oh, ow), dtype=np.float64)
    for b in range(n):
        for oc in range(cout):
            for oy in range(oh):
                for ox in range(ow):
                    window = x[b, :, oy:oy + kh, ox:ox + kw]
                    out[b, oc, oy, ox] = (window * w[oc]).sum() + bias[oc]
    return out.astype(np.float32)


@pytest.fixture
def conv_case():
    rng = np.random.RandomState(5)
    x = rng.randn(2, 2, 6, 6).astype(np.float32)
    w = rng.randn(3, 2, 3, 3).astype(np.float32)
    bias = rng.randn(3).astype(np.float32)
    return x, w, bias


class TestConvolution:
    def test_forward(self, dnn, conv_case):
        runtime, lib = dnn
        x, w, bias = conv_case
        x_buf = upload_array(runtime, x)
        w_buf = upload_array(runtime, w)
        b_buf = upload_array(runtime, bias)
        y_buf = runtime.cudaMalloc(2 * 3 * 4 * 4 * 4)
        oh, ow = lib.conv2d_forward(y_buf, x_buf, w_buf, b_buf,
                                    2, 2, 6, 6, 3, 3, 3)
        assert (oh, ow) == (4, 4)
        y = download_array(runtime, y_buf, 96).reshape(2, 3, 4, 4)
        assert np.allclose(y, conv2d_ref(x, w, bias), atol=1e-3)

    def test_backward_filter(self, dnn, conv_case):
        runtime, lib = dnn
        x, w, bias = conv_case
        rng = np.random.RandomState(6)
        dy = rng.randn(2, 3, 4, 4).astype(np.float32)
        x_buf = upload_array(runtime, x)
        dy_buf = upload_array(runtime, dy)
        dw_buf = runtime.cudaMalloc(w.size * 4)
        lib.conv2d_backward_filter(dw_buf, x_buf, dy_buf,
                                   2, 2, 6, 6, 3, 3, 3)
        dw = download_array(runtime, dw_buf, w.size).reshape(w.shape)
        # Numerical reference via correlation.
        ref = np.zeros_like(w, dtype=np.float64)
        for oc in range(3):
            for ic in range(2):
                for ky in range(3):
                    for kx in range(3):
                        ref[oc, ic, ky, kx] = (
                            x[:, ic, ky:ky + 4, kx:kx + 4]
                            * dy[:, oc]).sum()
        assert np.allclose(dw, ref, atol=1e-2)

    def test_backward_data(self, dnn, conv_case):
        runtime, lib = dnn
        x, w, bias = conv_case
        rng = np.random.RandomState(7)
        dy = rng.randn(2, 3, 4, 4).astype(np.float32)
        w_buf = upload_array(runtime, w)
        dy_buf = upload_array(runtime, dy)
        dx_buf = runtime.cudaMalloc(x.size * 4)
        lib.conv2d_backward_data(dx_buf, w_buf, dy_buf,
                                 2, 2, 6, 6, 3, 3, 3)
        dx = download_array(runtime, dx_buf, x.size).reshape(x.shape)
        ref = np.zeros_like(x, dtype=np.float64)
        for b in range(2):
            for oc in range(3):
                for oy in range(4):
                    for ox in range(4):
                        ref[b, :, oy:oy + 3, ox:ox + 3] += (
                            w[oc] * dy[b, oc, oy, ox])
        assert np.allclose(dx, ref, atol=1e-2)

    def test_bias_backward(self, dnn):
        runtime, lib = dnn
        dy = np.random.RandomState(8).randn(2, 3, 4, 4).astype(np.float32)
        dy_buf = upload_array(runtime, dy)
        db_buf = runtime.cudaMalloc(12)
        lib.bias_backward(db_buf, dy_buf, 2, 3, 16)
        db = download_array(runtime, db_buf, 3)
        assert np.allclose(db, dy.sum(axis=(0, 2, 3)), atol=1e-3)


class TestPooling:
    def test_forward_and_argmax(self, dnn):
        runtime, lib = dnn
        x = np.random.RandomState(9).randn(1, 2, 4, 4).astype(np.float32)
        x_buf = upload_array(runtime, x)
        y_buf = runtime.cudaMalloc(2 * 2 * 2 * 4)
        idx_buf = runtime.cudaMalloc(2 * 2 * 2 * 4)
        lib.maxpool_forward(y_buf, idx_buf, x_buf, 2, 4, 4, 2)
        y = download_array(runtime, y_buf, 8).reshape(1, 2, 2, 2)
        ref = x.reshape(1, 2, 2, 2, 2, 2).max(axis=(3, 5))
        assert np.allclose(y, ref)

    def test_backward_scatters_to_argmax(self, dnn):
        runtime, lib = dnn
        x = np.zeros((1, 1, 4, 4), dtype=np.float32)
        x[0, 0, 1, 2] = 5.0   # argmax of pool (0, 1)
        x[0, 0, 3, 0] = 4.0   # argmax of pool (1, 0)
        x_buf = upload_array(runtime, x)
        y_buf = runtime.cudaMalloc(16)
        idx_buf = runtime.cudaMalloc(16)
        lib.maxpool_forward(y_buf, idx_buf, x_buf, 1, 4, 4, 2)
        dy = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        dy_buf = upload_array(runtime, dy)
        dx_buf = runtime.cudaMalloc(64)
        lib.maxpool_backward(dx_buf, dy_buf, idx_buf, 4, 16)
        dx = download_array(runtime, dx_buf, 16).reshape(4, 4)
        assert dx[1, 2] == 2.0
        assert dx[3, 0] == 3.0
        assert dx.sum() == pytest.approx(10.0)


class TestActivationsAndLoss:
    def test_relu_roundtrip(self, dnn):
        runtime, lib = dnn
        x = np.array([-2.0, -0.5, 0.0, 1.5], dtype=np.float32)
        x_buf = upload_array(runtime, x)
        y_buf = runtime.cudaMalloc(16)
        lib.relu_forward(y_buf, x_buf, 4)
        y = download_array(runtime, y_buf, 4)
        assert np.array_equal(y, np.maximum(x, 0))
        dy = np.ones(4, dtype=np.float32)
        dy_buf = upload_array(runtime, dy)
        dx_buf = runtime.cudaMalloc(16)
        lib.relu_backward(dx_buf, dy_buf, y_buf, 4)
        assert np.array_equal(download_array(runtime, dx_buf, 4),
                              np.array([0, 0, 0, 1], dtype=np.float32))

    def test_tanh(self, dnn):
        runtime, lib = dnn
        x = np.linspace(-2, 2, 16).astype(np.float32)
        x_buf = upload_array(runtime, x)
        y_buf = runtime.cudaMalloc(64)
        lib.tanh_forward(y_buf, x_buf, 16)
        assert np.allclose(download_array(runtime, y_buf, 16),
                           np.tanh(x), atol=1e-4)

    def test_softmax_xent_grad(self, dnn):
        runtime, lib = dnn
        rng = np.random.RandomState(10)
        logits = rng.randn(4, 6).astype(np.float32)
        labels = np.array([1, 0, 5, 2], dtype=np.uint32)
        logits_buf = upload_array(runtime, logits)
        labels_buf = upload_array(runtime, labels)
        probs_buf = runtime.cudaMalloc(96)
        loss_buf = runtime.cudaMalloc(16)
        grad_buf = runtime.cudaMalloc(96)
        lib.softmax_xent(probs_buf, loss_buf, grad_buf, logits_buf,
                         labels_buf, 4, 6, 0.25)
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        ref_probs = exp / exp.sum(axis=1, keepdims=True)
        onehot = np.zeros_like(ref_probs)
        onehot[np.arange(4), labels] = 1.0
        grad = download_array(runtime, grad_buf, 24).reshape(4, 6)
        assert np.allclose(grad, (ref_probs - onehot) * 0.25, atol=1e-3)
        loss = download_array(runtime, loss_buf, 4)
        ref_loss = -np.log(ref_probs[np.arange(4), labels])
        assert np.allclose(loss, ref_loss, atol=1e-2)

    def test_sgd_update(self, dnn):
        runtime, lib = dnn
        w = np.ones(32, dtype=np.float32)
        g = np.full(32, 2.0, dtype=np.float32)
        w_buf, g_buf = upload_array(runtime, w), upload_array(runtime, g)
        lib.sgd_update(w_buf, g_buf, 0.1, 32)
        assert np.allclose(download_array(runtime, w_buf, 32), 0.8)

    def test_fill_and_add(self, dnn):
        runtime, lib = dnn
        a_buf = runtime.cudaMalloc(64)
        b_buf = runtime.cudaMalloc(64)
        z_buf = runtime.cudaMalloc(64)
        lib.fill(a_buf, 3.0, 16)
        lib.fill(b_buf, 4.0, 16)
        lib.add(z_buf, a_buf, b_buf, 16)
        assert np.allclose(download_array(runtime, z_buf, 16), 7.0)

    def test_add_bias(self, dnn):
        runtime, lib = dnn
        y = np.zeros((3, 4), dtype=np.float32)
        bias = np.array([1, 2, 3, 4], dtype=np.float32)
        y_buf = upload_array(runtime, y)
        b_buf = upload_array(runtime, bias)
        lib.add_bias(y_buf, b_buf, 3, 4)
        out = download_array(runtime, y_buf, 12).reshape(3, 4)
        assert np.allclose(out, np.tile(bias, (3, 1)))
