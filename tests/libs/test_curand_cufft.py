"""cuRAND and cuFFT library tests."""

import numpy as np
import pytest

from repro.libs.cufft import CuFFT
from repro.libs.curand import CuRAND

from tests.conftest import download_array, upload_array


@pytest.fixture
def rng_lib(native_stack):
    _, _, runtime = native_stack
    return runtime, CuRAND(runtime, seed=99)


@pytest.fixture
def fft_lib(native_stack):
    _, _, runtime = native_stack
    return runtime, CuFFT(runtime)


class TestCuRAND:
    def test_uniform_range_and_moments(self, rng_lib):
        runtime, lib = rng_lib
        buf = runtime.cudaMalloc(4096)
        lib.generate_uniform(buf, 1024)
        values = download_array(runtime, buf, 1024)
        assert (values >= 0).all() and (values < 1).all()
        assert 0.45 < values.mean() < 0.55
        assert 0.25 < values.std() < 0.33  # ~1/sqrt(12)

    def test_normal_moments(self, rng_lib):
        runtime, lib = rng_lib
        buf = runtime.cudaMalloc(4096)
        lib.generate_normal(buf, 1024, mean=5.0, stddev=2.0)
        values = download_array(runtime, buf, 1024)
        assert abs(values.mean() - 5.0) < 0.3
        assert abs(values.std() - 2.0) < 0.4

    def test_deterministic_per_seed(self, native_stack):
        _, _, runtime = native_stack
        a = CuRAND(runtime, seed=7)
        b = CuRAND(runtime, seed=7)
        buf_a = runtime.cudaMalloc(256)
        buf_b = runtime.cudaMalloc(256)
        a.generate_uniform(buf_a, 64)
        b.generate_uniform(buf_b, 64)
        assert np.array_equal(download_array(runtime, buf_a, 64),
                              download_array(runtime, buf_b, 64))

    def test_successive_fills_differ(self, rng_lib):
        runtime, lib = rng_lib
        buf_a = runtime.cudaMalloc(256)
        buf_b = runtime.cudaMalloc(256)
        lib.generate_uniform(buf_a, 64)
        lib.generate_uniform(buf_b, 64)
        assert not np.array_equal(download_array(runtime, buf_a, 64),
                                  download_array(runtime, buf_b, 64))

    def test_values_independent_of_grid(self, native_stack):
        """Counter-based generation: block size must not change the
        stream."""
        _, _, runtime = native_stack
        lib = CuRAND(runtime, seed=3)
        lib.BLOCK = 32
        buf_a = runtime.cudaMalloc(512)
        lib.generate_uniform(buf_a, 128)
        lib2 = CuRAND(runtime, seed=3)
        lib2.BLOCK = 128
        buf_b = runtime.cudaMalloc(512)
        lib2.generate_uniform(buf_b, 128)
        assert np.array_equal(download_array(runtime, buf_a, 128),
                              download_array(runtime, buf_b, 128))


class TestCuFFT:
    def _signal(self, n, seed=11):
        rng = np.random.RandomState(seed)
        real = rng.randn(n).astype(np.float32)
        imag = rng.randn(n).astype(np.float32)
        interleaved = np.empty(2 * n, dtype=np.float32)
        interleaved[0::2] = real
        interleaved[1::2] = imag
        return interleaved, real + 1j * imag

    def test_forward_matches_numpy(self, fft_lib):
        runtime, lib = fft_lib
        interleaved, signal = self._signal(16)
        in_buf = upload_array(runtime, interleaved)
        out_buf = runtime.cudaMalloc(interleaved.nbytes)
        lib.execute(out_buf, in_buf, 16)
        out = download_array(runtime, out_buf, 32)
        got = out[0::2] + 1j * out[1::2]
        assert np.allclose(got, np.fft.fft(signal), atol=1e-2)

    def test_inverse_normalised(self, fft_lib):
        runtime, lib = fft_lib
        interleaved, signal = self._signal(8, seed=12)
        in_buf = upload_array(runtime, interleaved)
        mid_buf = runtime.cudaMalloc(interleaved.nbytes)
        out_buf = runtime.cudaMalloc(interleaved.nbytes)
        lib.execute(mid_buf, in_buf, 8)
        lib.execute(out_buf, mid_buf, 8, inverse=True)
        out = download_array(runtime, out_buf, 16)
        assert np.allclose(out, interleaved, atol=1e-2)

    def test_roundtrip_allocates_scratch(self, fft_lib):
        runtime, lib = fft_lib
        interleaved, _ = self._signal(8, seed=13)
        buf = upload_array(runtime, interleaved)
        mallocs = runtime.profile.calls.get("cudaMalloc", 0)
        lib.roundtrip(buf, 8)
        assert runtime.profile.calls["cudaMalloc"] == mallocs + 1
        out = download_array(runtime, buf, 16)
        assert np.allclose(out, interleaved, atol=1e-2)
