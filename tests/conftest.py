"""Shared fixtures: devices, stacks, and small reference kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policy import FencingMode
from repro.core.server import GuardianServer
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.ptx.builder import KernelBuilder, build_module
from repro.runtime.api import CudaRuntime
from repro.runtime.backend import NativeBackend
from repro.runtime.interpose import LIBCUDA, DynamicLoader


@pytest.fixture
def device():
    """A fresh Quadro RTX A4000-class simulated device."""
    return Device(QUADRO_RTX_A4000)


@pytest.fixture
def native_stack(device):
    """(device, backend, runtime) — the unprotected native path."""
    backend = NativeBackend(device, "test-app")
    loader = DynamicLoader()
    loader.register(LIBCUDA, backend)
    runtime = CudaRuntime(loader)
    return device, backend, runtime


@pytest.fixture
def guardian_system(device):
    """(device, server) with bitwise fencing."""
    server = GuardianServer(device, FencingMode.BITWISE)
    return device, server


def make_guardian_tenant(server, app_id: str, max_bytes: int = 1 << 20):
    """A preloaded tenant runtime attached to ``server``."""
    from repro.core.client import preload_guardian

    loader = DynamicLoader()
    client = preload_guardian(loader, server, app_id, max_bytes)
    return client, CudaRuntime(loader)


# --------------------------------------------------------------------------
# Reference kernels
# --------------------------------------------------------------------------


def saxpy_kernel():
    """y[i] = a * x[i] + y[i] — the vanilla reference kernel."""
    b = KernelBuilder("saxpy", params=[
        ("y", "u64"), ("x", "u64"), ("a", "f32"), ("n", "u32"),
    ])
    y = b.load_param_ptr("y")
    x = b.load_param_ptr("x")
    a = b.load_param("a", "f32")
    n = b.load_param("n", "u32")
    gid = b.global_thread_id()
    with b.if_less_than(gid, n):
        x_addr = b.element_addr(x, gid, 4)
        y_addr = b.element_addr(y, gid, 4)
        result = b.fma("f32", b.ld_global("f32", x_addr), a,
                       b.ld_global("f32", y_addr))
        b.st_global("f32", y_addr, result)
    return b.build()


def writer_kernel():
    """out[idx/4] = value — writes a u32 at an arbitrary byte offset.

    The "malicious" kernel of the isolation tests: ``idx`` can point
    anywhere in the address space.
    """
    b = KernelBuilder("writer", params=[
        ("out", "u64"), ("idx", "u64"), ("value", "u32"),
    ])
    out = b.load_param_ptr("out")
    idx = b.load_param("idx", "u64")
    value = b.load_param("value", "u32")
    addr = b.add("s64", out, idx)
    b.st_global("u32", addr, value)
    return b.build()


def reader_kernel():
    """out[0] = *(in + idx) — arbitrary-offset read (data exfiltration)."""
    b = KernelBuilder("reader", params=[
        ("out", "u64"), ("base", "u64"), ("idx", "u64"),
    ])
    out = b.load_param_ptr("out")
    base = b.load_param_ptr("base")
    idx = b.load_param("idx", "u64")
    addr = b.add("s64", base, idx)
    value = b.ld_global("u32", addr)
    b.st_global("u32", out, value)
    return b.build()


def saxpy_module():
    return build_module([saxpy_kernel()])


def attack_module():
    return build_module([writer_kernel(), reader_kernel()])


def upload_array(runtime: CudaRuntime, values: np.ndarray) -> int:
    address = runtime.cudaMalloc(values.nbytes)
    runtime.cudaMemcpyH2D(address, np.ascontiguousarray(values).tobytes())
    return address


def download_array(runtime: CudaRuntime, address: int, count: int,
                   dtype=np.float32) -> np.ndarray:
    raw = runtime.cudaMemcpyD2H(address, count * np.dtype(dtype).itemsize)
    return np.frombuffer(raw, dtype=dtype).copy()
