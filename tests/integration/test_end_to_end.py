"""Full-stack integration tests.

Two tenants train real (miniature) neural networks through the complete
Guardian stack simultaneously; interception coverage is compared against
a naive library-level interceptor, reproducing the paper's Fig. 4
argument.
"""

import numpy as np
import pytest

from repro import FencingMode, GuardianSystem
from repro.workloads.frameworks import LibraryBundle, evaluate, train
from repro.workloads.frameworks.datasets import dataset_for
from repro.workloads.frameworks.networks import MODEL_ZOO


class TestGuardianSystemFacade:
    def test_attach_detach(self):
        system = GuardianSystem()
        tenant = system.attach("alice", 1 << 20)
        address = tenant.runtime.cudaMalloc(512)
        record = system.server.allocator.bounds.lookup("alice")
        assert record.contains(address, 512)
        system.detach("alice")
        assert system.server.tenant_count == 0

    def test_two_tenants_train_concurrently(self):
        system = GuardianSystem(mode=FencingMode.BITWISE)
        system.device.max_blocks_per_launch = 8
        results = {}
        for app_id, model_name in (("alice", "lenet"),
                                   ("bob", "cifar10")):
            tenant = system.attach(app_id, 64 << 20)
            libs = LibraryBundle.create(tenant.runtime)
            model = MODEL_ZOO[model_name](libs)
            data = dataset_for(model.input_shape, samples=8)
            results[app_id] = train(model, data, epochs=1,
                                    batch_size=8, lr=0.05)
        timeline = system.synchronize()
        assert np.isfinite(results["alice"].losses).all()
        assert np.isfinite(results["bob"].losses).all()
        # Both tenants completed on the shared timeline.
        assert "alice" in timeline.completion_by_tag
        assert "bob" in timeline.completion_by_tag
        assert timeline.context_switches == 0  # spatial sharing

    def test_training_converges_under_protection(self):
        """Fencing must be invisible to a correct tenant: training
        reduces loss exactly as it does natively."""
        system = GuardianSystem(mode=FencingMode.BITWISE)
        tenant = system.attach("solo", 64 << 20)
        libs = LibraryBundle.create(tenant.runtime)
        model = MODEL_ZOO["lenet"](libs)
        data = dataset_for(model.input_shape, samples=16)
        result = train(model, data, epochs=3, batch_size=8, lr=0.1)
        assert result.final_loss < result.first_loss
        accuracy = evaluate(model, data).accuracy
        assert accuracy > 0.2


class TestInterceptionCoverage:
    """The Fig. 4 comparison: library-level interception misses the
    implicit CUDA calls inside closed-source libraries; Guardian's
    runtime/driver-level interception catches everything."""

    def test_all_implicit_calls_reach_server(self):
        from repro.libs.cublas import CuBLAS

        system = GuardianSystem()
        tenant = system.attach("app", 64 << 20)
        blas = CuBLAS(tenant.runtime)
        xs = np.random.RandomState(0).randn(100).astype(np.float32)
        buf = tenant.runtime.cudaMalloc(400)
        tenant.runtime.cudaMemcpyH2D(buf, xs.tobytes())

        launches_before = system.server.stats.launches
        checked_before = system.server.stats.transfers_checked
        index = blas.isamax(100, buf)  # implicit mallocs/copies/launch
        assert index == int(np.abs(xs).argmax())
        # The kernel launched *by the library internally* went through
        # the server (and was the sandboxed variant).
        assert system.server.stats.launches == launches_before + 1
        assert system.server.stats.transfers_checked > checked_before

    def test_device_never_touched_directly(self):
        """With Guardian preloaded, the tenant process performs zero
        direct driver operations: every context on the device belongs
        to the server."""
        system = GuardianSystem()
        tenant = system.attach("app", 64 << 20)
        libs = LibraryBundle.create(tenant.runtime)
        model = MODEL_ZOO["lenet"](libs)
        data = dataset_for(model.input_shape, samples=8)
        system.device.max_blocks_per_launch = 8
        train(model, data, epochs=1, batch_size=8, lr=0.05)
        context_names = {context.name
                         for context in system.device.contexts.values()}
        assert context_names == {"guardian-server"}

    def test_naive_library_interceptor_misses_implicit_calls(self):
        """A wrapper around the *library API* (prior work's approach)
        observes 1 call where the runtime-level view sees the several
        implicit CUDA calls it triggered."""
        from repro.gpu.device import Device
        from repro.gpu.specs import QUADRO_RTX_A4000
        from repro.libs.cublas import CuBLAS
        from repro.runtime.api import CudaRuntime
        from repro.runtime.backend import NativeBackend
        from repro.runtime.interpose import LIBCUDA, DynamicLoader

        device = Device(QUADRO_RTX_A4000)
        backend = NativeBackend(device, "app")
        loader = DynamicLoader()
        loader.register(LIBCUDA, backend)
        runtime = CudaRuntime(loader)
        blas = CuBLAS(runtime)

        library_level_calls = []
        original = blas.isamax

        def wrapped(n, x):
            library_level_calls.append(("isamax", n))
            return original(n, x)

        blas.isamax = wrapped
        xs = np.random.RandomState(1).randn(64).astype(np.float32)
        buf = runtime.cudaMalloc(256)
        runtime.cudaMemcpyH2D(buf, xs.tobytes())
        runtime_calls_before = runtime.profile.total_calls
        blas.isamax(64, buf)
        runtime_calls = runtime.profile.total_calls - runtime_calls_before
        assert len(library_level_calls) == 1
        assert runtime_calls >= 5  # malloc x2, launch, memcpy x2, free x2


class TestMixedModeSystems:
    @pytest.mark.parametrize("mode", [
        FencingMode.MODULO, FencingMode.CHECKING,
    ])
    def test_training_under_other_modes(self, mode):
        system = GuardianSystem(mode=mode)
        system.device.max_blocks_per_launch = 8
        tenant = system.attach("app", 64 << 20)
        libs = LibraryBundle.create(tenant.runtime)
        model = MODEL_ZOO["lenet"](libs)
        data = dataset_for(model.input_shape, samples=8)
        result = train(model, data, epochs=1, batch_size=8, lr=0.05)
        assert np.isfinite(result.losses).all()
