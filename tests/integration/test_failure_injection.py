"""Failure injection: the server must stay healthy when tenants fail.

A multi-tenant GPU manager's real test is the unhappy path — tenant
OOM, malformed binaries, dead clients, killed kernels — none of which
may disturb other tenants or wedge the server.
"""

import numpy as np
import pytest

from repro import GuardianSystem
from repro.errors import (
    AllocationError,
    GuardianError,
    IPCError,
    PTXError,
)
from repro.driver.fatbin import FatBinary, FatbinEntry, build_fatbin

from tests.conftest import saxpy_module


@pytest.fixture
def system():
    return GuardianSystem()


class TestTenantOOM:
    def test_oom_contained_to_tenant(self, system):
        small = system.attach("small", 1 << 16)
        healthy = system.attach("healthy", 1 << 20)
        with pytest.raises(AllocationError):
            small.runtime.cudaMalloc(1 << 20)
        # The failed tenant keeps working within its budget...
        assert small.runtime.cudaMalloc(1024) > 0
        # ...and the neighbour never noticed.
        buffer = healthy.runtime.cudaMalloc(4096)
        healthy.runtime.cudaMemcpyH2D(buffer, b"ok" * 2048)
        assert healthy.runtime.cudaMemcpyD2H(buffer, 4096) == b"ok" * 2048

    def test_partition_exhaustion_message_names_partition(self, system):
        tenant = system.attach("t", 1 << 16)
        with pytest.raises(AllocationError, match="partition"):
            tenant.runtime.cudaMalloc(1 << 20)

    def test_device_capacity_exhaustion(self, system):
        total = system.server.allocator.total_bytes
        system.attach("hog", total // 2)
        from repro.errors import PartitionError

        with pytest.raises(PartitionError):
            system.attach("late", total)


class TestMalformedBinaries:
    def test_garbage_ptx_rejected_cleanly(self, system):
        tenant = system.attach("t", 1 << 20)
        garbage = FatBinary(name="junk", entries=[
            FatbinEntry(kind="ptx", arch="ampere",
                        payload=b"this is not ptx at all {"),
        ])
        with pytest.raises(Exception):
            tenant.runtime.registerFatBinary(garbage)
        # Server still serves the tenant afterwards.
        assert tenant.runtime.cudaMalloc(256) > 0

    def test_invalid_ptx_rejected_by_jit(self, system):
        tenant = system.attach("t", 1 << 20)
        bad = (".version 7.5\n.target sm_86\n.address_size 64\n"
               ".visible .entry k()\n{\nmov.u32 %r1, 1;\nret;\n}")
        with pytest.raises(PTXError):
            tenant.client.load_module_ptx(bad)

    def test_good_binary_after_bad(self, system):
        tenant = system.attach("t", 1 << 20)
        with pytest.raises(Exception):
            tenant.runtime.registerFatBinary(FatBinary(
                name="junk",
                entries=[FatbinEntry("ptx", "ampere", b"nope {{{")],
            ))
        handles = tenant.runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        assert "saxpy" in handles


class TestDeadClients:
    def test_calls_after_close_fail_fast(self, system):
        tenant = system.attach("t", 1 << 20)
        system.detach("t")
        with pytest.raises(IPCError):
            tenant.runtime.cudaMalloc(64)

    def test_partition_recycled_after_detach(self, system):
        first = system.attach("a", 1 << 20)
        base_a = system.server.allocator.bounds.lookup("a").base
        system.detach("a")
        system.attach("b", 1 << 20)
        assert system.server.allocator.bounds.lookup("b").base == base_a

    def test_detach_under_load_leaves_others_running(self, system):
        leaver = system.attach("leaver", 1 << 20)
        stayer = system.attach("stayer", 1 << 20)
        handles = stayer.runtime.registerFatBinary(
            build_fatbin(saxpy_module(), "lib", "11.7"))
        buffer = stayer.runtime.cudaMalloc(512)
        system.detach("leaver")
        stayer.runtime.cudaMemcpyH2D(
            buffer + 256, np.ones(32, dtype=np.float32).tobytes())
        stayer.runtime.cudaLaunchKernel(
            handles["saxpy"], (1, 1, 1), (32, 1, 1),
            [buffer, buffer + 256, 2.0, 32])
        out = np.frombuffer(stayer.runtime.cudaMemcpyD2H(buffer, 128),
                            dtype=np.float32)
        assert np.allclose(out, 2.0)


class TestKilledKernels:
    def test_server_survives_a_killed_kernel(self, system):
        from repro.ptx.builder import KernelBuilder, build_module

        spin = KernelBuilder("spin", params=[])
        label = spin.fresh_label("fw")
        spin.label(label)
        spin.bra(label)
        tenant = system.attach("t", 1 << 20)
        handles = tenant.runtime.registerFatBinary(
            build_fatbin(build_module([spin.build()]), "spin", "11.7"))
        for _ in range(3):
            with pytest.raises(GuardianError, match="terminated"):
                tenant.runtime.cudaLaunchKernel(
                    handles["spin"], (1, 1, 1), (1, 1, 1), [])
        assert system.server.stats.kernels_killed == 3
        # The tenant's data path still works.
        buffer = tenant.runtime.cudaMalloc(64)
        tenant.runtime.cudaMemcpyH2D(buffer, b"alive" + b"\x00" * 59)
        assert tenant.runtime.cudaMemcpyD2H(buffer, 5) == b"alive"
