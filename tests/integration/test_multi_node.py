"""Multi-node independence (the paper's §8 closing claim).

"Although our evaluation focuses on a single node, this overhead
remains constant even in multi-node setups [...] because G-Safe
operates independently in each node." Two simulated nodes run the same
tenant workload; per-node overheads must match, and nothing is shared.
"""

import numpy as np
import pytest

from repro import FencingMode, GuardianSystem
from repro.sharing.standalone import run_standalone
from repro.sharing.workload_mixes import _ml_workload


class TestMultiNodeIndependence:
    def test_per_node_overhead_identical(self):
        def overhead():
            native = run_standalone(
                _ml_workload("lenet", epochs=1, seed=0, samples=8,
                             batch=8),
                "native", max_blocks=4)
            fenced = run_standalone(
                _ml_workload("lenet", epochs=1, seed=0, samples=8,
                             batch=8),
                "bitwise", max_blocks=4)
            return fenced.makespan_seconds / native.makespan_seconds

        node_a = overhead()
        node_b = overhead()
        # Deterministic simulator: identical nodes, identical overhead.
        assert node_a == pytest.approx(node_b, rel=1e-9)

    def test_nodes_share_no_state(self):
        node_a = GuardianSystem(mode=FencingMode.BITWISE)
        node_b = GuardianSystem(mode=FencingMode.BITWISE)
        tenant_a = node_a.attach("app", 1 << 20)
        tenant_b = node_b.attach("app", 1 << 20)  # same id, other node
        buffer_a = tenant_a.runtime.cudaMalloc(256)
        buffer_b = tenant_b.runtime.cudaMalloc(256)
        tenant_a.runtime.cudaMemcpyH2D(buffer_a, b"A" * 256)
        tenant_b.runtime.cudaMemcpyH2D(buffer_b, b"B" * 256)
        assert tenant_a.runtime.cudaMemcpyD2H(buffer_a, 256) == b"A" * 256
        assert tenant_b.runtime.cudaMemcpyD2H(buffer_b, 256) == b"B" * 256
        assert node_a.device.memory is not node_b.device.memory
        assert node_a.server is not node_b.server

    def test_node_failure_isolated(self):
        """Killing a kernel on node A leaves node B untouched."""
        from repro.driver.fatbin import build_fatbin
        from repro.errors import GuardianError
        from repro.ptx.builder import KernelBuilder, build_module

        spin = KernelBuilder("spin", params=[])
        label = spin.fresh_label("fw")
        spin.label(label)
        spin.bra(label)
        fatbin = build_fatbin(build_module([spin.build()]), "s", "11.7")

        node_a = GuardianSystem()
        node_b = GuardianSystem()
        tenant_a = node_a.attach("t", 1 << 20)
        tenant_b = node_b.attach("t", 1 << 20)
        handles = tenant_a.runtime.registerFatBinary(fatbin)
        with pytest.raises(GuardianError):
            tenant_a.runtime.cudaLaunchKernel(handles["spin"],
                                              (1, 1, 1), (1, 1, 1), [])
        assert node_a.server.stats.kernels_killed == 1
        assert node_b.server.stats.kernels_killed == 0
        buffer = tenant_b.runtime.cudaMalloc(64)
        tenant_b.runtime.cudaMemcpyH2D(buffer, b"fine" + b"\x00" * 60)
        assert tenant_b.runtime.cudaMemcpyD2H(buffer, 4) == b"fine"
