"""Properties of the open-loop harness.

1. **Stock replay is bit-identical to the closed-loop script.** With
   backpressure and autoscaling off, the driver issues exactly the
   calls the equivalent closed-loop script issues, in the same order —
   for *any* seed and rate, the server's modelled cycle totals match
   to the bit (open loop changes the *accounting*, never the work).

2. **Shed sessions never perturb the survivors.** A shed or rejected
   session executes zero calls, so for *any* seed and queue depth the
   surviving sessions' bounds-table epochs — and the server's entire
   cycle total — are identical to a run in which the shed arrivals
   never existed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.server import GuardianServer, ServerConfig
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.loadgen import (
    LoadgenConfig,
    OpenLoopDriver,
    PoissonArrivals,
    SessionSpec,
    run_session,
)

SPEC = SessionSpec(iterations=2, sync_every=2)

#: One session's service demand on a fresh stock server, measured once
#: (the property bodies only need it to scale arrival rates).
_SERVICE = run_session(
    GuardianServer(Device(QUADRO_RTX_A4000)), "probe", SPEC
).host_cycles


def make_server(**knobs):
    return GuardianServer(Device(QUADRO_RTX_A4000),
                          config=ServerConfig(**knobs))


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    load=st.floats(min_value=0.1, max_value=3.0),
    count=st.integers(min_value=1, max_value=10),
)
def test_stock_replay_matches_closed_loop_bit_for_bit(seed, load, count):
    process = PoissonArrivals(rate=load / _SERVICE, seed=seed)

    open_server = make_server()
    driver = OpenLoopDriver(open_server, LoadgenConfig(seed=seed))
    report = driver.run(process, count, spec=SPEC)

    closed_server = make_server()
    closed = [run_session(closed_server, f"ld{index}", SPEC)
              for index in range(count)]

    assert open_server.stats.cycles == closed_server.stats.cycles
    assert (open_server.allocator.bounds.epochs()
            == closed_server.allocator.bounds.epochs())
    # Per-session service demand matches the closed-loop measurement.
    for outcome, result in zip(report.outcomes, closed):
        assert outcome.outcome == "completed"
        assert outcome.host_cycles == result.host_cycles


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    depth=st.integers(min_value=1, max_value=3),
    count=st.integers(min_value=5, max_value=15),
)
def test_shed_sessions_never_perturb_survivors(seed, depth, count):
    # Offer 4x one lane so the bounded queue actually sheds.
    process = PoissonArrivals(rate=4.0 / _SERVICE, seed=seed)

    shed_server = make_server()
    driver = OpenLoopDriver(
        shed_server,
        LoadgenConfig(capacity=1, admission_queue_depth=depth,
                      seed=seed),
    )
    report = driver.run(process, count, spec=SPEC)
    survivors = [o.app_id for o in report.outcomes
                 if o.outcome == "completed"]
    shed = [o.app_id for o in report.outcomes if o.outcome == "shed"]

    # Replay only the survivors closed-loop, same ids, same order.
    clean_server = make_server()
    for app_id in survivors:
        run_session(clean_server, app_id, SPEC)

    # The run with sheds did exactly the survivors' work: identical
    # cycle totals, identical per-tenant bounds epochs, and the shed
    # tenants left no bounds-table trace at all.
    assert shed_server.stats.cycles == clean_server.stats.cycles
    epochs = shed_server.allocator.bounds.epochs()
    assert epochs == clean_server.allocator.bounds.epochs()
    for app_id in shed:
        assert app_id not in epochs
