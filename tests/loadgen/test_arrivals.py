"""Arrival processes: seeded determinism and statistical shape."""

import pytest

from repro.loadgen import Arrival, MarkovModulatedArrivals, PoissonArrivals


def mmpp(seed=0):
    return MarkovModulatedArrivals(
        calm_rate=1e-6, burst_rate=1e-5,
        mean_calm_cycles=2e6, mean_burst_cycles=1e6, seed=seed,
    )


class TestPoissonArrivals:
    def test_trace_is_deterministic_per_seed(self):
        first = PoissonArrivals(rate=1e-5, seed=7).trace(50)
        second = PoissonArrivals(rate=1e-5, seed=7).trace(50)
        assert first == second

    def test_same_process_retracing_is_stable(self):
        process = PoissonArrivals(rate=1e-5, seed=3)
        assert process.trace(20) == process.trace(20)
        # A longer trace extends the same prefix, it does not reshuffle.
        assert process.trace(40)[:20] == process.trace(20)

    def test_seeds_differ(self):
        assert (PoissonArrivals(rate=1e-5, seed=0).trace(20)
                != PoissonArrivals(rate=1e-5, seed=1).trace(20))

    def test_trace_shape(self):
        trace = PoissonArrivals(rate=1e-5, seed=0).trace(30)
        assert [a.index for a in trace] == list(range(30))
        instants = [a.at_cycles for a in trace]
        assert instants == sorted(instants)
        assert all(instant > 0 for instant in instants)
        assert all(isinstance(a, Arrival) for a in trace)

    def test_mean_interarrival_tracks_rate(self):
        rate = 1e-5
        trace = PoissonArrivals(rate=rate, seed=0).trace(2000)
        mean_gap = trace[-1].at_cycles / len(trace)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.1)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=-1e-6)


class TestMarkovModulatedArrivals:
    def test_trace_is_deterministic_per_seed(self):
        assert mmpp(seed=5).trace(50) == mmpp(seed=5).trace(50)

    def test_seeds_differ(self):
        assert mmpp(seed=0).trace(20) != mmpp(seed=1).trace(20)

    def test_trace_shape(self):
        trace = mmpp().trace(40)
        assert [a.index for a in trace] == list(range(40))
        instants = [a.at_cycles for a in trace]
        assert instants == sorted(instants)

    def test_mean_rate_is_sojourn_weighted(self):
        process = mmpp()
        calm_weight = 2e6 / 3e6
        expected = calm_weight * 1e-6 + (1 - calm_weight) * 1e-5
        assert process.mean_rate() == pytest.approx(expected)

    def test_bursts_cluster_arrivals(self):
        # The burst state is 10x faster, so the observed mean gap must
        # land strictly between the two pure-state gaps.
        trace = mmpp().trace(2000)
        mean_gap = trace[-1].at_cycles / len(trace)
        assert 1 / 1e-5 < mean_gap < 1 / 1e-6

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(0.0, 1e-5, 1e6, 1e6)
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(1e-6, 1e-5, 0.0, 1e6)
