"""High-churn resident-tenant harness: determinism, ordering, and the
elastic-vs-static capacity recovery it exists to measure."""

import dataclasses

import pytest

from repro.core.server import GuardianServer, ServerConfig
from repro.gpu.device import Device
from repro.gpu.specs import MIB, QUADRO_RTX_A4000
from repro.loadgen import ChurnConfig, churn_trace, run_churn

SMALL = dataclasses.replace(QUADRO_RTX_A4000,
                            global_memory_bytes=17 * MIB)


def small_server(config=None) -> GuardianServer:
    return GuardianServer(Device(SMALL), config=config or ServerConfig())


class TestChurnTrace:
    def test_deterministic_per_seed(self):
        config = ChurnConfig(sessions=40, seed=11)
        assert churn_trace(config) == churn_trace(config)
        assert (churn_trace(config)
                != churn_trace(ChurnConfig(sessions=40, seed=12)))

    def test_every_session_arrives_and_departs(self):
        events = churn_trace(ChurnConfig(sessions=30))
        arrivals = [e.index for e in events if e.kind == "arrive"]
        departs = [e.index for e in events if e.kind == "depart"]
        assert sorted(arrivals) == list(range(30))
        assert sorted(departs) == list(range(30))

    def test_time_sorted_with_departs_first(self):
        events = churn_trace(ChurnConfig(sessions=60))
        instants = [e.at for e in events]
        assert instants == sorted(instants)
        # At any shared instant a departure sorts before an arrival,
        # so freed capacity is visible to the newcomer.
        from repro.loadgen.churn import _KIND_ORDER

        keys = [(e.at, _KIND_ORDER[e.kind]) for e in events]
        assert keys == sorted(keys)

    def test_heavy_and_touch_cadence(self):
        config = ChurnConfig(sessions=20, heavy_every=5, touch_every=3)
        events = churn_trace(config)
        heavies = {e.index for e in events
                   if e.kind == "arrive"
                   and e.touch_bytes > config.light_touch_bytes}
        assert heavies == {4, 9, 14, 19}
        touched = {e.index for e in events if e.kind == "touch"}
        assert touched == {2, 5, 8, 11, 14, 17}

    def test_config_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ChurnConfig(sessions=0)
        with pytest.raises(ValueError, match="must match"):
            ChurnConfig(sizes=(1, 2), size_weights=(1.0,))
        with pytest.raises(ValueError, match="positive"):
            ChurnConfig(mean_hold_cycles=0)


class TestRunChurn:
    CONFIG = ChurnConfig(sessions=60, seed=7)

    def test_static_server_sheds_under_churn(self):
        report = run_churn(small_server(), self.CONFIG)
        assert report.offered == 60
        assert report.admitted + report.shed == 60
        assert report.shed > 0  # the regime the engine exists for
        assert report.partitions_shrunk == 0
        assert report.swaps_out == 0

    def test_elastic_server_recovers_capacity(self):
        static = run_churn(small_server(), self.CONFIG)
        elastic = run_churn(small_server(ServerConfig.elastic()),
                            self.CONFIG)
        assert elastic.admitted > static.admitted
        assert elastic.shed_rate <= static.shed_rate
        # At least one mechanism did real work.
        assert (elastic.partitions_shrunk + elastic.tenants_compacted
                + elastic.swaps_out) > 0

    def test_all_residents_released_at_end(self):
        server = small_server(ServerConfig.elastic())
        run_churn(server, self.CONFIG)
        assert server.tenant_count == 0
        assert server.allocator.bytes_partitioned == 0
        assert server.elastic.swapped_bytes == 0

    def test_touches_revive_swapped_tenants(self):
        config = ChurnConfig(sessions=80, seed=5)
        report = run_churn(small_server(ServerConfig.elastic()), config)
        assert report.touches > 0
        assert report.touches_failed == 0

    def test_report_replays_are_reproducible(self):
        first = run_churn(small_server(ServerConfig.elastic()),
                          self.CONFIG)
        second = run_churn(small_server(ServerConfig.elastic()),
                           self.CONFIG)
        assert first.admitted == second.admitted
        assert first.server_cycles == second.server_cycles
        assert first.bytes_swapped == second.bytes_swapped
