"""Bounded admission and bounded IPC queues: the backpressure knobs.

Both default off; the stock server and channel behave exactly as
before (the hypothesis properties pin the cycle totals, these tests
pin the semantics).
"""

import pytest

from repro.core.client import GuardianClient
from repro.core.ipc import IPCChannel, IPCError
from repro.core.server import GuardianServer, ServerConfig
from repro.errors import AdmissionRejected, QueueSaturated
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000


def make_server(**knobs):
    return GuardianServer(Device(QUADRO_RTX_A4000),
                          config=ServerConfig(**knobs))


class TestAdmissionGate:
    def test_defaults_off(self):
        config = ServerConfig()
        assert config.max_resident_tenants is None
        assert config.ipc_queue_limit is None
        assert config.ipc_shed_overflow is False

    def test_gate_rejects_past_the_limit(self):
        server = make_server(max_resident_tenants=2)
        first = GuardianClient(server, "a", 1 << 20)
        GuardianClient(server, "b", 1 << 20)
        with pytest.raises(AdmissionRejected) as excinfo:
            GuardianClient(server, "c", 1 << 20)
        assert excinfo.value.resident == 2
        assert excinfo.value.limit == 2
        assert server.stats.admissions_rejected == 1
        # A rejected attach created nothing.
        assert "c" not in server.allocator.bounds.epochs()
        # Detach frees the slot.
        first.close()
        GuardianClient(server, "c", 1 << 20)
        assert server.stats.admissions_rejected == 1

    def test_rejection_leaves_residents_untouched(self):
        server = make_server(max_resident_tenants=1)
        client = GuardianClient(server, "resident", 1 << 20)
        buffer = client.malloc(256)
        epochs = server.allocator.bounds.epochs()
        cycles = server.stats.cycles
        for _ in range(3):
            with pytest.raises(AdmissionRejected):
                GuardianClient(server, "turned-away", 1 << 20)
        assert server.allocator.bounds.epochs() == epochs
        assert server.stats.cycles == cycles
        # The resident still works.
        client.memcpy_h2d(buffer, b"\x01" * 16)
        client.synchronize()


class TestBoundedIPCQueue:
    def batching_client(self, app_id="t0", **knobs):
        server = make_server(enable_ipc_batching=True, **knobs)
        return GuardianClient(server, app_id, 1 << 20)

    def test_overflow_flushes_by_default(self):
        client = self.batching_client(ipc_queue_limit=2)
        buffer = client.malloc(64)
        for _ in range(5):
            client.memcpy_h2d(buffer, b"\x00" * 16)
        stats = client.channel.stats
        assert stats.overflow_flushes > 0
        assert stats.shed_calls == 0
        assert len(client.channel._queue) <= 2
        client.synchronize()
        client.close()

    def test_shed_overflow_raises_queue_saturated(self):
        client = self.batching_client(ipc_queue_limit=1,
                                      ipc_shed_overflow=True)
        buffer = client.malloc(64)
        client.memcpy_h2d(buffer, b"\x00" * 16)
        with pytest.raises(QueueSaturated) as excinfo:
            client.memcpy_h2d(buffer, b"\x00" * 16)
        assert excinfo.value.limit == 1
        assert client.channel.stats.shed_calls == 1
        # The shed call was dropped, not queued; a flush drains the
        # survivor and the channel keeps working.
        client.flush()
        client.memcpy_h2d(buffer, b"\x00" * 16)
        client.synchronize()
        client.close()

    def test_queue_limit_ignored_without_batching(self):
        # A synchronous channel never queues, so the bound never trips.
        server = make_server(ipc_queue_limit=1)
        client = GuardianClient(server, "t0", 1 << 20)
        buffer = client.malloc(64)
        for _ in range(4):
            client.memcpy_h2d(buffer, b"\x00" * 16)
        assert client.channel.stats.overflow_flushes == 0
        assert client.channel.stats.shed_calls == 0
        client.close()

    def test_client_overrides_beat_server_defaults(self):
        server = make_server(enable_ipc_batching=True,
                             ipc_queue_limit=1, ipc_shed_overflow=True)
        client = GuardianClient(server, "t0", 1 << 20,
                                queue_limit=8, shed_overflow=False)
        buffer = client.malloc(64)
        for _ in range(6):
            client.memcpy_h2d(buffer, b"\x00" * 16)
        assert client.channel.stats.shed_calls == 0
        client.synchronize()
        client.close()

    def test_rejects_bad_limit(self):
        with pytest.raises(IPCError):
            IPCChannel(object(), "t0", queue_limit=0)
