"""The open-loop driver: queueing semantics, shedding, autoscaling,
and the SLO evaluator's denominator guards."""

import pytest

from repro.analysis.reporting import render_slo_report
from repro.core.server import GuardianServer, ServerConfig
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.loadgen import (
    LoadgenConfig,
    LoadReport,
    OpenLoopDriver,
    PoissonArrivals,
    SessionSpec,
    SLOClass,
    evaluate_slo,
    run_session,
)

SPEC = SessionSpec(iterations=2, sync_every=2)


def make_server(**knobs):
    return GuardianServer(Device(QUADRO_RTX_A4000),
                          config=ServerConfig(**knobs))


def service_cycles():
    return run_session(make_server(), "probe", SPEC).host_cycles


class TestLoadgenConfig:
    def test_defaults_are_off(self):
        config = LoadgenConfig()
        assert config.capacity == 1
        assert config.admission_queue_depth is None
        assert config.autoscale is False

    @pytest.mark.parametrize("bad", [
        {"capacity": 0},
        {"admission_queue_depth": 0},
        {"min_capacity": 0},
        {"min_capacity": 4, "max_capacity": 2},
        {"control_interval_cycles": 0.0},
    ])
    def test_rejects_bad_knobs(self, bad):
        with pytest.raises(ValueError):
            LoadgenConfig(**bad)


class TestOpenLoopDriver:
    def test_light_load_sees_bare_service_demand(self):
        service = service_cycles()
        driver = OpenLoopDriver(make_server())
        report = driver.run(
            PoissonArrivals(rate=0.01 / service, seed=0), 5, spec=SPEC,
        )
        assert len(report.outcomes) == 5
        for outcome in report.outcomes:
            assert outcome.outcome == "completed"
            # Arrivals ~100 service times apart never queue.
            assert outcome.start == outcome.arrival
            assert outcome.latency == pytest.approx(service)

    def test_overload_queues_and_latency_grows(self):
        service = service_cycles()
        driver = OpenLoopDriver(make_server())
        report = driver.run(
            PoissonArrivals(rate=3.0 / service, seed=0), 20, spec=SPEC,
        )
        latencies = [o.latency for o in report.outcomes]
        # Open loop at 3x one lane: the queue builds, the tail dwarfs
        # the bare service demand.
        assert max(latencies) > 3 * service
        assert report.makespan_cycles > report.outcomes[-1].arrival

    def test_added_capacity_cuts_latency(self):
        service = service_cycles()
        process = PoissonArrivals(rate=1.5 / service, seed=0)
        reports = {}
        for capacity in (1, 4):
            driver = OpenLoopDriver(
                make_server(), LoadgenConfig(capacity=capacity))
            reports[capacity] = driver.run(process, 20, spec=SPEC)
        slow = max(o.latency for o in reports[1].outcomes)
        fast = max(o.latency for o in reports[4].outcomes)
        assert fast < slow

    def test_bounded_queue_sheds_excess(self):
        service = service_cycles()
        driver = OpenLoopDriver(
            make_server(),
            LoadgenConfig(capacity=1, admission_queue_depth=2),
        )
        report = driver.run(
            PoissonArrivals(rate=4.0 / service, seed=0), 25, spec=SPEC,
        )
        outcomes = {o.outcome for o in report.outcomes}
        shed = [o for o in report.outcomes if o.outcome == "shed"]
        assert "shed" in outcomes and "completed" in outcomes
        # A shed session records nothing but its arrival.
        for outcome in shed:
            assert outcome.latency == 0.0
            assert outcome.host_cycles == 0.0
        # Telemetry counted every fate.
        telemetry = driver.telemetry
        counted = (telemetry.sessions.value(cls="standard",
                                            outcome="completed")
                   + telemetry.sessions.value(cls="standard",
                                              outcome="shed"))
        assert counted == 25

    def test_server_admission_gate_records_rejections(self):
        service = service_cycles()
        driver = OpenLoopDriver(make_server(max_resident_tenants=0))
        report = driver.run(
            PoissonArrivals(rate=1.0 / service, seed=0), 4, spec=SPEC,
        )
        assert all(o.outcome == "rejected" for o in report.outcomes)
        assert driver.server.stats.admissions_rejected == 4
        assert driver.server.stats.cycles == 0.0

    def test_class_mix_rotates_deterministically(self):
        service = service_cycles()
        classes = {
            "gold": SLOClass("gold", 2 * service),
            "best-effort": SLOClass("best-effort", 50 * service),
        }
        driver = OpenLoopDriver(make_server(), classes=classes)
        specs = {
            "gold": SPEC,
            "best-effort": SessionSpec(slo_class="best-effort",
                                       iterations=2, sync_every=2),
        }
        report = driver.run(
            PoissonArrivals(rate=0.5 / service, seed=0), 6,
            spec=specs, mix=["gold", "gold", "best-effort"],
        )
        assert [o.slo_class for o in report.outcomes] == [
            "gold", "gold", "best-effort",
            "gold", "gold", "best-effort",
        ]

    def test_mix_validation(self):
        driver = OpenLoopDriver(make_server())
        process = PoissonArrivals(rate=1e-5, seed=0)
        with pytest.raises(ValueError):
            driver.run(process, 2, spec={}, mix=[])
        with pytest.raises(ValueError):
            driver.run(process, 2, spec={"a": SPEC}, mix=["a", "b"])

    def test_autoscaler_widens_on_breach_and_logs_timeline(self):
        service = service_cycles()
        classes = {"standard": SLOClass("standard", 2.0 * service)}
        driver = OpenLoopDriver(
            make_server(),
            LoadgenConfig(capacity=1, autoscale=True, min_capacity=1,
                          max_capacity=4,
                          control_interval_cycles=4 * service),
            classes,
        )
        report = driver.run(
            PoissonArrivals(rate=2.0 / service, seed=0), 30, spec=SPEC,
        )
        assert report.capacity_timeline[0] == (0.0, 1)
        peak = max(capacity for _, capacity in report.capacity_timeline)
        assert peak > 1
        assert report.windows  # control windows were evaluated
        assert any(view["standard"]["breached"]
                   for view in report.windows
                   if view["standard"]["p99"] is not None)
        # The gauge mirrors the last tick.
        assert (driver.telemetry.loadgen_capacity.value()
                == report.capacity_timeline[-1][1])

    def test_autoscale_off_never_touches_capacity(self):
        service = service_cycles()
        driver = OpenLoopDriver(make_server(),
                                LoadgenConfig(capacity=2))
        report = driver.run(
            PoissonArrivals(rate=2.0 / service, seed=0), 10, spec=SPEC,
        )
        assert report.capacity_timeline == [(0.0, 2)]
        assert report.windows == []


class TestSLOEvaluator:
    def test_grades_a_run(self):
        service = service_cycles()
        classes = {"standard": SLOClass("standard", 10 * service)}
        driver = OpenLoopDriver(make_server(), classes=classes)
        report = driver.run(
            PoissonArrivals(rate=0.2 / service, seed=0), 8, spec=SPEC,
        )
        grades = evaluate_slo(report, classes)
        grade = grades["classes"]["standard"]
        assert grade["offered"] == grade["completed"] == 8
        assert grade["slo_compliant"] == 8
        assert grade["shed_rate"] == 0.0
        assert grade["p50"] is not None
        assert grade["p50"] <= grade["p99"] <= grade["p999"]
        assert grades["overall"]["goodput_per_mcycle"] > 0

    def test_empty_run_reports_na_not_zero_division(self):
        classes = {"standard": SLOClass("standard", 1e6)}
        report = LoadReport()
        driver = OpenLoopDriver(make_server(), classes=classes)
        report.telemetry = driver.telemetry
        grades = evaluate_slo(report, classes)
        grade = grades["classes"]["standard"]
        assert grade["p50"] is None
        assert grade["p99"] is None
        assert grade["goodput_per_mcycle"] is None
        assert grade["shed_rate"] is None
        assert grade["time_above_slo"] is None
        assert grades["overall"]["goodput_per_mcycle"] is None
        rendered = render_slo_report(grades)
        assert "n/a" in rendered

    def test_all_shed_run_has_horizon_but_na_quantiles(self):
        service = service_cycles()
        classes = {"standard": SLOClass("standard", 10 * service)}
        driver = OpenLoopDriver(
            make_server(max_resident_tenants=0), classes=classes)
        report = driver.run(
            PoissonArrivals(rate=1.0 / service, seed=0), 5, spec=SPEC,
        )
        grades = evaluate_slo(report, classes)
        grade = grades["classes"]["standard"]
        assert grade["rejected"] == 5
        assert grade["shed_rate"] == 1.0
        assert grade["p99"] is None
        assert grades["overall"]["horizon_cycles"] > 0
        # Goodput is a real 0.0 (horizon exists, nothing compliant).
        assert grades["overall"]["goodput_per_mcycle"] == 0.0

    def test_render_includes_every_class(self):
        service = service_cycles()
        classes = {
            "gold": SLOClass("gold", 5 * service),
            "best-effort": SLOClass("best-effort", 50 * service),
        }
        driver = OpenLoopDriver(make_server(), classes=classes)
        specs = {
            "gold": SPEC,
            "best-effort": SessionSpec(slo_class="best-effort",
                                       iterations=2, sync_every=2),
        }
        report = driver.run(
            PoissonArrivals(rate=0.2 / service, seed=0), 4,
            spec=specs, mix=["gold", "best-effort"],
        )
        rendered = render_slo_report(evaluate_slo(report, classes))
        assert "gold" in rendered and "best-effort" in rendered
        assert "overall:" in rendered
