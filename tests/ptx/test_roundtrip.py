"""Emitter/parser round-trip, including property-based kernels.

Round-tripping matters operationally: Guardian extracts PTX *text*
with cuobjdump, patches the AST, emits text for the driver JIT — any
loss in either direction would corrupt tenant kernels.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.libs.kernels import blas, dnn, fft, rand
from repro.ptx import emit_module, parse_module, validate_module
from repro.ptx.ast import Immediate
from repro.ptx.builder import KernelBuilder, build_module


def assert_roundtrips(module):
    text = emit_module(module)
    reparsed = parse_module(text)
    assert emit_module(reparsed) == text
    validate_module(reparsed)
    return reparsed


class TestLibraryKernelRoundtrip:
    """Every library kernel must round-trip (they are what Guardian
    extracts and patches in production)."""

    @pytest.mark.parametrize("kernel_set", [
        blas.all_kernels, dnn.all_kernels, fft.all_kernels,
        rand.all_kernels,
    ])
    def test_roundtrip(self, kernel_set):
        module = build_module(kernel_set())
        reparsed = assert_roundtrips(module)
        assert set(reparsed.kernels) == set(module.kernels)

    def test_instruction_counts_preserved(self):
        module = build_module(blas.all_kernels())
        reparsed = assert_roundtrips(module)
        for name, kernel in module.kernels.items():
            original = len(list(kernel.instructions()))
            parsed = len(list(reparsed.kernels[name].instructions()))
            assert original == parsed


_SCALAR_TYPES = st.sampled_from(["u32", "s32", "u64", "s64", "f32"])


@st.composite
def random_straightline_kernel(draw):
    """A random but *valid* straight-line kernel via the builder."""
    b = KernelBuilder(
        "rk", params=[("out", "u64"), ("n", "u32"), ("s", "f32")]
    )
    out = b.load_param_ptr("out")
    n = b.load_param("n", "u32")
    scalar = b.load_param("s", "f32")
    gid = b.global_thread_id()
    ivals = [gid, n]
    fvals = [scalar]
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        kind = draw(st.sampled_from(["iadd", "imul", "iand", "ishl",
                                     "fadd", "fmul", "ffma", "setp_sel"]))
        if kind == "iadd":
            ivals.append(b.add("u32", draw(st.sampled_from(ivals)),
                               draw(st.integers(0, 1000))))
        elif kind == "imul":
            ivals.append(b.mul("u32", draw(st.sampled_from(ivals)),
                               draw(st.integers(1, 65537))))
        elif kind == "iand":
            ivals.append(b.and_("b32", draw(st.sampled_from(ivals)),
                                draw(st.integers(0, 2**32 - 1))))
        elif kind == "ishl":
            ivals.append(b.shl("b32", draw(st.sampled_from(ivals)),
                               draw(st.integers(0, 15))))
        elif kind == "fadd":
            fvals.append(b.add("f32", draw(st.sampled_from(fvals)),
                               Immediate(draw(st.floats(
                                   -100, 100, allow_nan=False)))))
        elif kind == "fmul":
            fvals.append(b.mul("f32", draw(st.sampled_from(fvals)),
                               draw(st.sampled_from(fvals))))
        elif kind == "ffma":
            fvals.append(b.fma("f32", draw(st.sampled_from(fvals)),
                               draw(st.sampled_from(fvals)),
                               draw(st.sampled_from(fvals))))
        else:
            pred = b.setp(draw(st.sampled_from(
                ["eq", "ne", "lt", "le", "gt", "ge"])),
                "u32", draw(st.sampled_from(ivals)),
                draw(st.sampled_from(ivals)))
            result = b.reg("f32")
            b.emit("selp.f32", result, draw(st.sampled_from(fvals)),
                   draw(st.sampled_from(fvals)), pred)
            fvals.append(result)
    with b.if_less_than(gid, n):
        addr = b.element_addr(out, gid, 4)
        b.st_global("f32", addr, fvals[-1])
    return build_module([b.build()])


class TestPropertyRoundtrip:
    @given(random_straightline_kernel())
    @settings(max_examples=40, deadline=None)
    def test_random_kernels_roundtrip(self, module):
        assert_roundtrips(module)

    @given(st.floats(allow_nan=False, allow_infinity=True, width=32))
    def test_float_immediates_roundtrip(self, value):
        b = KernelBuilder("fk", params=[("out", "u64")])
        out = b.load_param("out", "u64")
        constant = b.mov("f32", Immediate(float(value)))
        b.st_global("f32", out, constant)
        module = build_module([b.build()])
        reparsed = assert_roundtrips(module)
        mov = [i for i in reparsed.kernels["fk"].instructions()
               if i.base_op == "mov"][0]
        parsed_value = mov.operands[1].value
        assert parsed_value == float(value) or (
            math.isnan(parsed_value) and math.isnan(value)
        )

    @given(st.integers(min_value=-(2**63), max_value=2**64 - 1))
    def test_int_immediates_roundtrip(self, value):
        b = KernelBuilder("ik", params=[("out", "u64")])
        out = b.load_param("out", "u64")
        constant = b.mov("u64", Immediate(value))
        b.st_global("u64", out, constant)
        reparsed = assert_roundtrips(build_module([b.build()]))
        mov = [i for i in reparsed.kernels["ik"].instructions()
               if i.base_op == "mov"][0]
        assert mov.operands[1].value == value
