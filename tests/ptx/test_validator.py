"""Validator tests — the ptxas-reject behaviour the threat model leans
on (direct branches are safe *because* the assembler verifies labels)."""

import pytest

from repro.errors import PTXValidationError
from repro.ptx import parse_module, validate_module

_HEADER = ".version 7.5\n.target sm_86\n.address_size 64\n"


def _module(body: str, params: str = ""):
    return parse_module(
        f"{_HEADER}.visible .entry k({params})\n{{\n{body}\n}}"
    )


class TestRegisterValidation:
    def test_undeclared_register_rejected(self):
        module = _module("mov.u32 %r1, 1;\nret;")
        with pytest.raises(PTXValidationError, match="undeclared"):
            validate_module(module)

    def test_declared_register_accepted(self):
        module = _module(".reg .b32 %r<2>;\nmov.u32 %r1, 1;\nret;")
        validate_module(module)

    def test_register_count_is_exclusive_bound(self):
        # .reg .b32 %r<2> declares only %r1.
        module = _module(".reg .b32 %r<2>;\nmov.u32 %r2, 1;\nret;")
        with pytest.raises(PTXValidationError):
            validate_module(module)

    def test_undeclared_guard_rejected(self):
        module = _module(
            ".reg .b32 %r<2>;\n@%p1 mov.u32 %r1, 1;\nret;"
        )
        with pytest.raises(PTXValidationError, match="predicate"):
            validate_module(module)

    def test_undeclared_address_register_rejected(self):
        module = _module(
            ".reg .b32 %r<2>;\nld.global.u32 %r1, [%rd9];\nret;"
        )
        with pytest.raises(PTXValidationError):
            validate_module(module)


class TestBranchValidation:
    def test_direct_branch_to_known_label(self):
        module = _module("bra DONE;\nDONE:\nret;")
        validate_module(module)

    def test_direct_branch_to_unknown_label_rejected(self):
        # The assembler-reports-errors property of the threat model.
        module = _module("bra NOWHERE;\nret;")
        with pytest.raises(PTXValidationError, match="unknown label"):
            validate_module(module)

    def test_brx_targets_must_exist(self):
        module = _module(
            ".reg .b32 %r<2>;\nA:\nbrx.idx %r1, {A, MISSING};\nret;"
        )
        with pytest.raises(PTXValidationError, match="unknown labels"):
            validate_module(module)

    def test_brx_with_valid_targets(self):
        module = _module(
            ".reg .b32 %r<2>;\nmov.u32 %r1, 0;\nA:\nB:\n"
            "brx.idx %r1, {A, B};\nret;"
        )
        validate_module(module)


class TestSymbolValidation:
    def test_param_reference_accepted(self):
        module = _module(
            ".reg .b64 %rd<2>;\nld.param.u64 %rd1, [k_p0];\nret;",
            params=".param .u64 k_p0",
        )
        validate_module(module)

    def test_unknown_symbol_rejected(self):
        module = _module(
            ".reg .b64 %rd<2>;\nld.param.u64 %rd1, [ghost];\nret;"
        )
        with pytest.raises(PTXValidationError, match="unknown symbol"):
            validate_module(module)

    def test_global_symbol_accepted(self):
        module = parse_module(
            _HEADER
            + ".global .align 4 .f32 table[8];\n"
            + ".visible .entry k()\n{\n.reg .b64 %rd<2>;\n"
            + "mov.u64 %rd1, table;\nret;\n}"
        )
        validate_module(module)

    def test_shared_symbol_accepted(self):
        module = _module(
            ".shared .align 4 .f32 tile[16];\n.reg .b64 %rd<2>;\n"
            "mov.u64 %rd1, tile;\nret;"
        )
        validate_module(module)

    def test_error_names_kernel(self):
        module = _module("mov.u32 %r1, 1;\nret;")
        with pytest.raises(PTXValidationError, match="'k'"):
            validate_module(module)
