"""ISA table tests."""

import pytest

from repro.ptx import isa


class TestTypeWidths:
    def test_basic_widths(self):
        assert isa.type_width("u8") == 1
        assert isa.type_width("b16") == 2
        assert isa.type_width("f32") == 4
        assert isa.type_width("u64") == 8
        assert isa.type_width("f64") == 8

    def test_pred_is_one_byte(self):
        assert isa.type_width("pred") == 1

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            isa.type_width("q128")

    def test_signedness_partition(self):
        # Every non-float, non-pred type is either signed or unsigned.
        for name in isa.TYPE_WIDTHS:
            if name == "pred" or isa.is_float(name):
                continue
            assert (name in isa.SIGNED_TYPES) != (
                name in isa.UNSIGNED_TYPES
            )

    def test_float_types(self):
        assert isa.is_float("f32")
        assert isa.is_float("f64")
        assert not isa.is_float("u32")


class TestOpcodes:
    def test_lookup_by_full_mnemonic(self):
        assert isa.opcode_info("ld.global.u32").name == "ld"
        assert isa.opcode_info("mad.lo.s32").name == "mad"
        assert isa.opcode_info("brx.idx").name == "brx"

    def test_unknown_opcode_raises(self):
        with pytest.raises(KeyError):
            isa.opcode_info("frobnicate.u32")

    def test_memory_ops_flagged(self):
        assert isa.opcode_info("ld").is_memory
        assert isa.opcode_info("st").is_memory
        assert isa.opcode_info("atom").is_memory
        assert not isa.opcode_info("add").is_memory

    def test_control_ops_flagged(self):
        for mnemonic in ("bra", "brx", "ret", "exit", "bar", "call"):
            assert isa.opcode_info(mnemonic).is_control

    def test_store_has_no_dest(self):
        assert not isa.opcode_info("st").has_dest
        assert isa.opcode_info("ld").has_dest

    def test_every_latency_class_defined(self):
        for op in isa.OPCODES.values():
            assert op.latency_class in isa.LATENCY_CLASSES

    def test_bitwise_cost_is_four_cycles(self):
        # The paper's central constant: AND/OR cost ~4 cycles each,
        # so the two-instruction fence costs ~8 (Fig. 6).
        assert isa.LATENCY_CLASSES["alu"] == 4

    def test_divergent_class_expensive(self):
        # Conditional checks run through the Address Divergence Unit.
        assert isa.LATENCY_CLASSES["divergent"] == 80


class TestStateSpaces:
    def test_off_chip_spaces(self):
        assert "global" in isa.OFF_CHIP_SPACES
        assert "shared" not in isa.OFF_CHIP_SPACES
        assert "param" not in isa.OFF_CHIP_SPACES

    def test_special_registers_contain_thread_ids(self):
        assert "%tid.x" in isa.SPECIAL_REGISTERS
        assert "%ctaid.z" in isa.SPECIAL_REGISTERS
