"""KernelBuilder tests."""

from repro.ptx import emit_module, validate_module
from repro.ptx.ast import Immediate, Instruction, RegDecl
from repro.ptx.builder import KernelBuilder, build_module


class TestRegisterAllocation:
    def test_fresh_registers_unique(self):
        b = KernelBuilder("k", params=[])
        names = {b.reg("u32").name for _ in range(10)}
        assert len(names) == 10

    def test_banks_by_type(self):
        b = KernelBuilder("k", params=[])
        assert b.reg("u32").name.startswith("%r")
        assert b.reg("u64").name.startswith("%rd")
        assert b.reg("f32").name.startswith("%f")
        assert b.reg("f64").name.startswith("%fd")
        assert b.reg("pred").name.startswith("%p")

    def test_regdecls_cover_used_registers(self):
        b = KernelBuilder("k", params=[("n", "u32")])
        n = b.load_param("n", "u32")
        b.add("u32", n, 1)
        kernel = b.build()
        declared = kernel.declared_registers()
        for instruction in kernel.instructions():
            for operand in instruction.operands:
                if hasattr(operand, "name") and str(operand).startswith(
                    "%"
                ):
                    if operand.__class__.__name__ == "Register":
                        assert operand.name in declared


class TestStructure:
    def test_trailing_ret_added(self):
        b = KernelBuilder("k", params=[])
        kernel = b.build()
        last = list(kernel.instructions())[-1]
        assert last.base_op == "ret"

    def test_explicit_ret_not_duplicated(self):
        b = KernelBuilder("k", params=[])
        b.ret()
        kernel = b.build()
        rets = [i for i in kernel.instructions() if i.base_op == "ret"]
        assert len(rets) == 1

    def test_param_naming_convention(self):
        b = KernelBuilder("mykernel", params=[("x", "u64")])
        assert b.params[0].name == "mykernel_param_x"

    def test_if_less_than_emits_guarded_branch(self):
        b = KernelBuilder("k", params=[("n", "u32")])
        n = b.load_param("n", "u32")
        gid = b.global_thread_id()
        with b.if_less_than(gid, n):
            b.mov("u32", Immediate(1))
        kernel = b.build()
        guarded = [i for i in kernel.instructions()
                   if i.guard is not None]
        assert len(guarded) == 1
        assert guarded[0].base_op == "bra"

    def test_loop_structure(self):
        b = KernelBuilder("k", params=[])
        with b.loop(Immediate(4)):
            pass
        kernel = b.build()
        branches = [i for i in kernel.instructions()
                    if i.base_op == "bra"]
        # One guarded exit branch, one back edge.
        assert len(branches) == 2
        labels = kernel.labels()
        assert len(labels) == 2

    def test_shared_array_declared(self):
        b = KernelBuilder("k", params=[])
        b.shared_array("tile", "f32", 32)
        kernel = b.build()
        shared = [s for s in kernel.body
                  if s.__class__.__name__ == "SharedDecl"]
        assert shared[0].size_bytes == 128

    def test_built_kernels_validate(self):
        b = KernelBuilder("k", params=[("out", "u64"), ("n", "u32")])
        out = b.load_param_ptr("out")
        n = b.load_param("n", "u32")
        gid = b.global_thread_id()
        with b.if_less_than(gid, n):
            addr = b.element_addr(out, gid, 4)
            b.st_global("f32", addr, b.mov("f32", Immediate(1.0)))
        validate_module(build_module([b.build()]))

    def test_func_builder(self):
        b = KernelBuilder("helper", params=[("x", "f32")],
                          is_entry=False)
        kernel = b.build()
        assert not kernel.is_entry

    def test_emitted_prologue_matches_nvcc_shape(self):
        b = KernelBuilder("k", params=[("p", "u64")])
        b.load_param_ptr("p")
        text = emit_module(build_module([b.build()]))
        assert "ld.param.u64" in text
        assert "cvta.to.global.u64" in text
