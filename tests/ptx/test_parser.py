"""Parser tests: the paper's Listing-2-style PTX must parse."""

import pytest

from repro.errors import PTXParseError
from repro.ptx import parse_module
from repro.ptx.ast import (
    Immediate,
    Instruction,
    MemRef,
    Register,
    SpecialReg,
    Symbol,
    TargetList,
)

LISTING_STYLE_PTX = """
.version 7.5
.target sm_86
.address_size 64

.visible .entry kernel(
    .param .u64 kernel_param_0,
    .param .u32 kernel_param_1,
    .param .u64 kernel_base,
    .param .u64 kernel_mask
)
{
    .reg .b32   %r<3>;
    .reg .b64   %rd<5>;
    .reg .b64   %grdreg<3>;
    ld.param.u64  %rd1, [kernel_param_0];
    ld.param.u32  %r1, [kernel_param_1];
    ld.param.u64  %grdreg1, [kernel_base];
    ld.param.u64  %grdreg2, [kernel_mask];
    cvta.to.global.u64  %rd2, %rd1;
    mov.u32  %r2, %tid.x;
    mul.wide.s32  %rd3, %r1, 4;
    add.s64  %rd4, %rd2, %rd3;
    and.b64  %rd4, %rd4, %grdreg2;
    or.b64   %rd4, %rd4, %grdreg1;
    st.global.u32  [%rd4], %r2;
    ret;
}
"""


class TestListingStylePTX:
    def test_parses(self):
        module = parse_module(LISTING_STYLE_PTX)
        assert "kernel" in module.kernels

    def test_module_directives(self):
        module = parse_module(LISTING_STYLE_PTX)
        assert module.version == "7.5"
        assert module.target == "sm_86"
        assert module.address_size == 64

    def test_parameters(self):
        kernel = parse_module(LISTING_STYLE_PTX).kernels["kernel"]
        assert [p.name for p in kernel.params] == [
            "kernel_param_0", "kernel_param_1", "kernel_base",
            "kernel_mask",
        ]
        assert kernel.params[1].param_type == "u32"

    def test_fencing_instructions_present(self):
        kernel = parse_module(LISTING_STYLE_PTX).kernels["kernel"]
        opcodes = [i.opcode for i in kernel.instructions()]
        assert "and.b64" in opcodes
        assert "or.b64" in opcodes

    def test_store_operands(self):
        kernel = parse_module(LISTING_STYLE_PTX).kernels["kernel"]
        store = [i for i in kernel.instructions() if i.is_store][0]
        memref, source = store.operands
        assert isinstance(memref, MemRef)
        assert memref.base == Register("%rd4")
        assert source == Register("%r2")


class TestOperandParsing:
    def _instr(self, text):
        module = parse_module(
            ".version 7.5\n.target sm_86\n.address_size 64\n"
            ".visible .entry k()\n{\n"
            ".reg .b32 %r<9>;\n.reg .b64 %rd<9>;\n.reg .pred %p<3>;\n"
            f"{text}\nret;\n}}"
        )
        return list(module.kernels["k"].instructions())[0]

    def test_immediate_decimal(self):
        ins = self._instr("mov.u32 %r1, 42;")
        assert ins.operands[1] == Immediate(42)

    def test_immediate_hex(self):
        ins = self._instr("mov.u64 %rd1, 0xFFFFFF;")
        assert ins.operands[1] == Immediate(0xFFFFFF)

    def test_immediate_negative(self):
        ins = self._instr("mov.u32 %r1, -7;")
        assert ins.operands[1] == Immediate(-7)

    def test_immediate_float_hex(self):
        ins = self._instr("mov.f32 %r1, 0f3F800000;")
        assert ins.operands[1] == Immediate(1.0)

    def test_immediate_double_hex(self):
        ins = self._instr("mov.f64 %rd1, 0d3FF0000000000000;")
        assert ins.operands[1] == Immediate(1.0)

    def test_memref_offset_positive(self):
        ins = self._instr("ld.global.u32 %r1, [%rd1+8];")
        assert ins.operands[1] == MemRef(Register("%rd1"), 8)

    def test_memref_offset_negative(self):
        ins = self._instr("ld.global.u32 %r1, [%rd1-4];")
        assert ins.operands[1] == MemRef(Register("%rd1"), -4)

    def test_special_register(self):
        ins = self._instr("mov.u32 %r1, %ctaid.x;")
        assert ins.operands[1] == SpecialReg("%ctaid.x")

    def test_guard_positive(self):
        ins = self._instr("@%p1 mov.u32 %r1, 1;")
        assert ins.guard is not None
        assert ins.guard.register == "%p1"
        assert not ins.guard.negated

    def test_guard_negated(self):
        ins = self._instr("@!%p2 mov.u32 %r1, 1;")
        assert ins.guard.negated

    def test_setp_comparison(self):
        ins = self._instr("setp.ge.s32 %p1, %r1, %r2;")
        assert ins.base_op == "setp"
        assert ins.suffixes[0] == "ge"

    def test_brx_target_list(self):
        module = parse_module(
            ".version 7.5\n.target sm_86\n.address_size 64\n"
            ".visible .entry k()\n{\n.reg .b32 %r<2>;\n"
            "L0:\nL1:\nbrx.idx %r1, {L0, L1};\nret;\n}"
        )
        ins = list(module.kernels["k"].instructions())[0]
        assert ins.operands[1] == TargetList(("L0", "L1"))


class TestStructure:
    def test_func_vs_entry(self):
        module = parse_module(
            ".version 7.5\n.target sm_86\n.address_size 64\n"
            ".visible .entry main_k()\n{\nret;\n}\n"
            ".func helper()\n{\nret;\n}\n"
        )
        assert module.kernels["main_k"].is_entry
        assert not module.kernels["helper"].is_entry
        assert len(module.entries) == 1
        assert len(module.funcs) == 1

    def test_global_declaration(self):
        module = parse_module(
            ".version 7.5\n.target sm_86\n.address_size 64\n"
            ".global .align 4 .f32 lookup_table[256];\n"
            ".visible .entry k()\n{\nret;\n}\n"
        )
        assert len(module.globals) == 1
        decl = module.globals[0]
        assert decl.name == "lookup_table"
        assert decl.size_bytes == 1024

    def test_shared_declaration(self):
        module = parse_module(
            ".version 7.5\n.target sm_86\n.address_size 64\n"
            ".visible .entry k()\n{\n"
            ".shared .align 4 .f32 tile[64];\nret;\n}\n"
        )
        kernel = module.kernels["k"]
        shared = [s for s in kernel.body
                  if s.__class__.__name__ == "SharedDecl"]
        assert shared[0].size_bytes == 256

    def test_comments_stripped(self):
        module = parse_module(
            "// leading comment\n"
            ".version 7.5\n.target sm_86\n.address_size 64\n"
            "/* block\ncomment */\n"
            ".visible .entry k()\n{\n"
            "ret; // trailing\n}\n"
        )
        assert "k" in module.kernels

    def test_duplicate_kernel_rejected(self):
        with pytest.raises(ValueError):
            parse_module(
                ".version 7.5\n.target sm_86\n.address_size 64\n"
                ".visible .entry k()\n{\nret;\n}\n"
                ".visible .entry k()\n{\nret;\n}\n"
            )

    def test_missing_semicolon_rejected(self):
        with pytest.raises(PTXParseError):
            parse_module(
                ".version 7.5\n.target sm_86\n.address_size 64\n"
                ".visible .entry k()\n{\nmov.u32 %r1, 1\n}\n"
            )

    def test_unknown_opcode_rejected(self):
        with pytest.raises(PTXParseError):
            parse_module(
                ".version 7.5\n.target sm_86\n.address_size 64\n"
                ".visible .entry k()\n{\nzorble.u32 %r1, 1;\nret;\n}\n"
            )

    def test_garbage_operand_rejected(self):
        # A single corrupted byte ("%rd3" -> "(rd3") must fail at parse
        # time, not survive as a Symbol and crash codegen or the JIT.
        with pytest.raises(PTXParseError):
            parse_module(
                ".version 7.5\n.target sm_86\n.address_size 64\n"
                ".visible .entry k()\n{\n.reg .u64 %rd<4>;\n"
                "mov.u64 %rd1, (rd3;\nret;\n}\n"
            )

    def test_garbage_register_rejected(self):
        with pytest.raises(PTXParseError):
            parse_module(
                ".version 7.5\n.target sm_86\n.address_size 64\n"
                ".visible .entry k()\n{\n.reg .u64 %rd<4>;\n"
                "mov.u64 %rd1, %rd(3;\nret;\n}\n"
            )
