"""AST object-model tests."""

import pytest

from repro.ptx.ast import (
    GlobalDecl,
    Guard,
    Immediate,
    Instruction,
    Kernel,
    MemRef,
    Module,
    Param,
    RegDecl,
    Register,
    Symbol,
)


class TestOperandRendering:
    def test_memref_forms(self):
        assert str(MemRef(Register("%rd1"))) == "[%rd1]"
        assert str(MemRef(Register("%rd1"), 8)) == "[%rd1+8]"
        assert str(MemRef(Register("%rd1"), -4)) == "[%rd1-4]"
        assert str(MemRef(Symbol("param_0"))) == "[param_0]"

    def test_guard_forms(self):
        assert str(Guard("%p1")) == "@%p1"
        assert str(Guard("%p2", negated=True)) == "@!%p2"

    def test_instruction_text(self):
        ins = Instruction(
            opcode="st.global.u32",
            operands=(MemRef(Register("%rd4")), Register("%r2")),
        )
        assert str(ins) == "st.global.u32 [%rd4], %r2;"

    def test_float_immediate_hex_form(self):
        assert str(Immediate(1.0)) == "0f3F800000"
        assert str(Immediate(42)) == "42"


class TestInstructionProperties:
    def test_opcode_decomposition(self):
        ins = Instruction(opcode="mad.lo.s32")
        assert ins.base_op == "mad"
        assert ins.suffixes == ("lo", "s32")
        assert ins.dtype == "s32"
        assert ins.space is None

    def test_space_detection(self):
        assert Instruction(opcode="ld.global.f32").space == "global"
        assert Instruction(opcode="st.shared.u32").space == "shared"
        assert Instruction(opcode="ld.param.u64").space == "param"

    def test_memory_access_classification(self):
        assert Instruction(opcode="ld.global.f32").is_memory_access
        assert Instruction(opcode="atom.global.add.u32").is_memory_access
        assert not Instruction(opcode="ld.param.u64").is_memory_access
        assert not Instruction(opcode="add.u32").is_memory_access

    def test_load_store_flags(self):
        assert Instruction(opcode="ld.global.f32").is_load
        assert Instruction(opcode="st.global.f32").is_store
        assert not Instruction(opcode="st.global.f32").is_load


class TestKernelModel:
    def _kernel(self):
        return Kernel(
            name="k",
            params=[Param("p0", "u64")],
            body=[
                RegDecl(reg_type="b32", prefix="%r", count=3),
                Instruction(opcode="ld.param.u64",
                            operands=(Register("%r1"),
                                      MemRef(Symbol("p0")))),
                Instruction(opcode="ld.global.u32",
                            operands=(Register("%r2"),
                                      MemRef(Register("%r1")))),
                Instruction(opcode="st.shared.u32",
                            operands=(MemRef(Register("%r1")),
                                      Register("%r2"))),
                Instruction(opcode="ret"),
            ],
        )

    def test_declared_registers_exclusive_bound(self):
        kernel = self._kernel()
        assert kernel.declared_registers() == {"%r1", "%r2"}

    def test_memory_accesses_only_off_chip(self):
        kernel = self._kernel()
        accessed = [i.opcode for i in kernel.memory_accesses()]
        # param loads and shared stores are excluded.
        assert accessed == ["ld.global.u32"]

    def test_param_width(self):
        assert Param("x", "u64").width == 8
        assert Param("x", "f32").width == 4


class TestModuleModel:
    def test_duplicate_rejected(self):
        module = Module()
        module.add(Kernel(name="k"))
        with pytest.raises(ValueError):
            module.add(Kernel(name="k"))

    def test_entries_vs_funcs(self):
        module = Module()
        module.add(Kernel(name="a", is_entry=True))
        module.add(Kernel(name="b", is_entry=False))
        assert [k.name for k in module.entries] == ["a"]
        assert [k.name for k in module.funcs] == ["b"]

    def test_global_decl_size(self):
        decl = GlobalDecl(name="t", elem_type="f64", num_elems=10)
        assert decl.size_bytes == 80
