"""Setup shim.

The execution environment has setuptools but no ``wheel`` package, so
PEP 660 editable installs (which shell out to ``bdist_wheel``) fail.
This shim lets ``pip install -e . --no-build-isolation --no-use-pep517``
fall back to the classic ``setup.py develop`` path. All real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
