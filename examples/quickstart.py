#!/usr/bin/env python3
"""Quickstart: protected GPU sharing in ~60 lines.

Creates a simulated GPU with a GuardianServer, attaches two tenants,
and shows the three protection mechanisms in action:

1. partitioned allocations (each tenant's pointers live in its own
   contiguous partition);
2. checked transfers (a hostile cudaMemcpy is rejected);
3. sandboxed kernels (an out-of-bounds store wraps into the
   attacker's own partition — the victim's bytes are untouched).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GuardianSystem
from repro.driver.fatbin import build_fatbin
from repro.errors import BoundsViolation
from repro.ptx.builder import KernelBuilder, build_module


def writer_kernel():
    """out[idx] = value — a kernel with an attacker-controlled pointer."""
    b = KernelBuilder("writer", params=[
        ("out", "u64"), ("idx", "u64"), ("value", "u32"),
    ])
    out = b.load_param_ptr("out")
    idx = b.load_param("idx", "u64")
    value = b.load_param("value", "u32")
    b.st_global("u32", b.add("s64", out, idx), value)
    return b.build()


def main():
    system = GuardianSystem()
    alice = system.attach("alice", max_bytes=1 << 20)
    mallory = system.attach("mallory", max_bytes=1 << 20)

    # --- 1. partitioned allocations -----------------------------------
    alice_buf = alice.runtime.cudaMalloc(1024)
    mallory_buf = mallory.runtime.cudaMalloc(1024)
    alice_part = system.server.allocator.bounds.lookup("alice")
    mallory_part = system.server.allocator.bounds.lookup("mallory")
    print(f"alice   partition [{alice_part.base:#x}, {alice_part.end:#x})"
          f"  buffer {alice_buf:#x}")
    print(f"mallory partition [{mallory_part.base:#x},"
          f" {mallory_part.end:#x})  buffer {mallory_buf:#x}")

    secret = np.arange(256, dtype=np.float32)
    alice.runtime.cudaMemcpyH2D(alice_buf, secret.tobytes())

    # --- 2. checked transfers ------------------------------------------
    try:
        mallory.runtime.cudaMemcpyH2D(alice_buf, b"\x00" * 1024)
    except BoundsViolation as rejected:
        print(f"\nhostile cudaMemcpy fenced: {rejected}")

    # --- 3. sandboxed kernels ------------------------------------------
    fatbin = build_fatbin(build_module([writer_kernel()]),
                          "attack_app", "11.7")
    handles = mallory.runtime.registerFatBinary(fatbin)
    evil_offset = alice_buf - mallory_buf  # aim straight at alice
    mallory.runtime.cudaLaunchKernel(
        handles["writer"], (1, 1, 1), (1, 1, 1),
        [mallory_buf, evil_offset, 0xDEADBEEF])

    survived = np.frombuffer(
        alice.runtime.cudaMemcpyD2H(alice_buf, 1024), dtype=np.float32)
    print(f"\nmalicious kernel launched; alice's data intact: "
          f"{np.array_equal(survived, secret)}")

    timeline = system.synchronize()
    print(f"\ndevice makespan: {timeline.makespan_cycles:,.0f} cycles "
          f"({system.device.elapsed_seconds() * 1e6:.1f} us simulated); "
          f"context switches: {timeline.context_switches} "
          f"(spatial sharing)")


if __name__ == "__main__":
    main()
