#!/usr/bin/env python3
"""Tour of the three bounds-checking modes (paper §4.4).

Prints the actual patched PTX of a small kernel under bitwise fencing
(the paper's Listing 2), modulo fencing and address checking, then
measures each mode's end-to-end overhead on a LeNet training run —
reproducing the Fig. 8 ordering: bitwise < modulo < checking.

Run:  python examples/fencing_modes.py
"""

from repro.core.patcher import PTXPatcher
from repro.core.policy import FencingMode
from repro.ptx.builder import KernelBuilder, build_module
from repro.ptx.emitter import emit_module
from repro.sharing.standalone import run_standalone_suite
from repro.sharing.workload_mixes import _ml_workload


def sample_kernel():
    """The paper's Listing 1: A[tid] = j."""
    b = KernelBuilder("kernel", params=[("A", "u64"), ("j", "u32")])
    array = b.load_param_ptr("A")
    value = b.load_param("j", "u32")
    tid = b.special("%tid.x")
    b.st_global("u32", b.element_addr(array, tid, 4), value)
    return b.build()


def show_patched_ptx():
    for mode in (FencingMode.BITWISE, FencingMode.MODULO,
                 FencingMode.CHECKING):
        patched, report = PTXPatcher(mode).patch_kernel(sample_kernel())
        print(f"\n===== {mode.value} "
              f"(+{report.extra_instructions} instructions, "
              f"+{report.extra_params} params) =====")
        print(emit_module(build_module([patched])))


def measure_overheads():
    print("\nmeasuring LeNet training under each mode "
          "(sampled execution)...\n")
    results = run_standalone_suite(
        lambda: _ml_workload("lenet", epochs=1, seed=0,
                             samples=16, batch=16),
        max_blocks=4,
    )
    native = results["native"]
    print(f"  {'config':10s} {'time':>10s} {'vs native':>10s}")
    for config, seconds in results.items():
        print(f"  {config:10s} {seconds * 1e3:9.3f}ms "
              f"{seconds / native - 1:+9.1%}")
    print("\npaper bands: noprot 3.7-10%, bitwise 5.9-12%, "
          "modulo ~29%, checking ~70%")


if __name__ == "__main__":
    show_patched_ptx()
    measure_overheads()
