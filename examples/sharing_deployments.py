#!/usr/bin/env python3
"""Compare the four GPU-sharing deployments on one workload mix.

Runs Table 4's mix A (2x LeNet) under native time-sharing, MPS,
Guardian without protection, and Guardian with bitwise fencing —
a single-mix slice of Fig. 7. Spatial sharing should beat native
time-sharing, with Guardian costing a few percent over MPS.

Run:  python examples/sharing_deployments.py [mix]
"""

import sys

from repro.analysis.reporting import render_table
from repro.sharing import DEPLOYMENTS, build_mix, run_deployment


def main():
    mix_id = sys.argv[1] if len(sys.argv) > 1 else "A"
    apps = [definition.name for definition in
            __import__("repro.sharing.workload_mixes",
                       fromlist=["MIXES"]).MIXES[mix_id]]
    print(f"mix {mix_id}: {len(apps)} tenants ({', '.join(apps)})\n")

    rows = []
    native_seconds = None
    for deployment in DEPLOYMENTS:
        run = run_deployment(
            deployment,
            build_mix(mix_id, samples=16, batch=16),
            max_blocks=4,
        )
        if native_seconds is None:
            native_seconds = run.makespan_seconds
        rows.append([
            deployment,
            f"{run.makespan_seconds * 1e3:.3f} ms",
            f"{native_seconds / run.makespan_seconds:.2f}x",
            run.context_switches,
            run.kernels_launched,
        ])
    print(render_table(
        ["deployment", "makespan", "vs native", "ctx switches",
         "kernels"],
        rows,
        title=f"Fig. 7 slice: workload mix {mix_id}",
    ))
    print("\npaper shape: spatial > native (avg ~1.23x, up to 2x); "
          "guardian ~4.8% behind MPS")


if __name__ == "__main__":
    main()
