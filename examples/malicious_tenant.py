#!/usr/bin/env python3
"""The attack the paper's Fig. 2 / Fig. 5 describe, executed twice.

Scenario: Alice trains on the GPU; Mallory shares it spatially and
launches kernels with attacker-controlled pointers.

Act 1 — MPS-style unprotected sharing: the attack corrupts Alice's
model and reads her data.

Act 2 — the same binary under Guardian with bitwise fencing: the
malicious store wraps into Mallory's *own* partition (the Fig. 5
wrap-around, printed with real addresses); the read returns Mallory's
own bytes instead of the secret.

Run:  python examples/malicious_tenant.py
"""

import numpy as np

from repro import GuardianSystem
from repro.core.masks import fence_address
from repro.driver.fatbin import build_fatbin
from repro.gpu.device import Device
from repro.gpu.specs import QUADRO_RTX_A4000
from repro.ptx.builder import KernelBuilder, build_module
from repro.runtime.api import CudaRuntime
from repro.runtime.interpose import LIBCUDA, DynamicLoader
from repro.sharing.mps import MPSClient, MPSServer

SECRET = np.float32(1337.0)


def attack_binary():
    write = KernelBuilder("oob_write", params=[
        ("base", "u64"), ("offset", "u64"), ("value", "u32"),
    ])
    pointer = write.load_param_ptr("base")
    offset = write.load_param("offset", "u64")
    value = write.load_param("value", "u32")
    write.st_global("u32", write.add("s64", pointer, offset), value)

    read = KernelBuilder("oob_read", params=[
        ("out", "u64"), ("base", "u64"), ("offset", "u64"),
    ])
    out = read.load_param_ptr("out")
    pointer = read.load_param_ptr("base")
    offset = read.load_param("offset", "u64")
    loot = read.ld_global("u32", read.add("s64", pointer, offset))
    read.st_global("u32", out, loot)

    return build_fatbin(build_module([write.build(), read.build()]),
                        "mallory_app", "11.7")


def attack(alice_runtime, mallory_runtime, label):
    print(f"\n=== {label} ===")
    alice_buf = alice_runtime.cudaMalloc(256)
    alice_runtime.cudaMemcpyH2D(
        alice_buf, np.full(64, SECRET, dtype=np.float32).tobytes())

    handles = mallory_runtime.registerFatBinary(attack_binary())
    mallory_buf = mallory_runtime.cudaMalloc(256)
    evil = alice_buf - mallory_buf

    # Read Alice's secret out first...
    mallory_runtime.cudaLaunchKernel(
        handles["oob_read"], (1, 1, 1), (1, 1, 1),
        [mallory_buf, mallory_buf, evil])
    loot = np.frombuffer(
        mallory_runtime.cudaMemcpyD2H(mallory_buf, 4),
        dtype=np.float32)[0]
    # ...then corrupt her buffer.
    mallory_runtime.cudaLaunchKernel(
        handles["oob_write"], (1, 1, 1), (1, 1, 1),
        [mallory_buf, evil, 0xBADC0DE])

    alice_data = np.frombuffer(
        alice_runtime.cudaMemcpyD2H(alice_buf, 256), dtype=np.float32)

    corrupted = not np.all(alice_data == SECRET)
    exfiltrated = loot == SECRET
    print(f"  alice's buffer corrupted:  {corrupted}")
    print(f"  secret exfiltrated:        {exfiltrated}")
    return alice_buf, mallory_buf


def main():
    # --- Act 1: unprotected spatial sharing (MPS) ----------------------
    device = Device(QUADRO_RTX_A4000)
    mps = MPSServer(device)

    def mps_tenant(app_id):
        loader = DynamicLoader()
        loader.register(LIBCUDA, MPSClient(mps, app_id))
        return CudaRuntime(loader)

    attack(mps_tenant("alice"), mps_tenant("mallory"),
           "MPS spatial sharing (unprotected)")

    # --- Act 2: Guardian with bitwise fencing ---------------------------
    system = GuardianSystem()
    alice = system.attach("alice", 1 << 20)
    mallory = system.attach("mallory", 1 << 20)
    alice_buf, mallory_buf = attack(
        alice.runtime, mallory.runtime,
        "Guardian spatial sharing (bitwise fencing)")

    # Show the Fig. 5 wrap-around with real addresses.
    record = system.server.allocator.bounds.lookup("mallory")
    evil_address = mallory_buf + (alice_buf - mallory_buf)
    fenced = fence_address(evil_address, record.base, record.mask)
    value = int.from_bytes(system.device.memory.read(fenced, 4),
                           "little")
    print(f"\n  Fig. 5 wrap-around:")
    print(f"    target address   {evil_address:#x} (alice's buffer)")
    print(f"    partition mask   {record.mask:#x}")
    print(f"    fenced address   {fenced:#x} (inside mallory's own "
          f"partition)")
    print(f"    byte landed as   {value:#x} (mallory corrupted only "
          f"herself)")


if __name__ == "__main__":
    main()
