#!/usr/bin/env python3
"""Dynamic partition resizing — the paper's future-work item, built.

A tenant that declared too little memory grows its partition *in
place*: the base address never changes, so every device pointer the
tenant already holds stays valid; only the fence mask widens, and the
very next kernel launch picks the new mask up from the bounds table.
Growth absorbs the partition's buddy region, so it fails loudly when a
neighbour tenant occupies it.

Run:  python examples/dynamic_partitions.py
"""

import numpy as np

from repro import GuardianSystem
from repro.errors import AllocationError, PartitionError


def show(system, app_id):
    record = system.server.allocator.bounds.lookup(app_id)
    print(f"  {app_id}: partition [{record.base:#x}, {record.end:#x}) "
          f"size {record.size >> 20} MiB, mask {record.mask:#x}")


def main():
    system = GuardianSystem()
    tenant = system.attach("trainer", max_bytes=1 << 20)
    print("initial layout:")
    show(system, "trainer")

    pointer = tenant.runtime.cudaMalloc(4096)
    tenant.runtime.cudaMemcpyH2D(
        pointer, np.arange(1024, dtype=np.float32).tobytes())

    print("\nallocating 3 MiB inside a 1 MiB partition:")
    try:
        tenant.runtime.cudaMalloc(3 << 20)
    except AllocationError as oom:
        print(f"  fails as expected: {oom}")

    print("\ngrowing the partition to 4 MiB (in-place, buddy absorb):")
    new_size = tenant.client.grow_partition(4 << 20)
    show(system, "trainer")
    print(f"  grow_partition returned {new_size >> 20} MiB")

    big = tenant.runtime.cudaMalloc(3 << 20)
    print(f"  3 MiB allocation now succeeds at {big:#x}")

    survived = np.frombuffer(
        tenant.runtime.cudaMemcpyD2H(pointer, 4096), dtype=np.float32)
    print(f"  pre-growth pointer still valid: "
          f"{np.array_equal(survived, np.arange(1024, dtype=np.float32))}")

    print("\na neighbour tenant blocks further growth:")
    system.attach("neighbour", max_bytes=4 << 20)
    show(system, "neighbour")
    try:
        tenant.client.grow_partition(8 << 20)
    except PartitionError as blocked:
        print(f"  fails safely: {blocked}")


if __name__ == "__main__":
    main()
