#!/usr/bin/env python3
"""Two ML tenants train concurrently on one protected GPU.

Alice trains LeNet on MNIST-like data while Bob trains the CIFAR-10
CNN — both through the full Guardian stack (preloaded shim, IPC,
partitioned memory, sandboxed kernels), exactly like the paper's
Caffe/PyTorch co-location runs. Afterwards the shared timeline shows
their kernels overlapping on different streams.

Run:  python examples/multi_tenant_training.py
"""

from repro import GuardianSystem
from repro.workloads.frameworks import LibraryBundle, evaluate, train
from repro.workloads.frameworks.datasets import dataset_for
from repro.workloads.frameworks.networks import MODEL_ZOO


def main():
    system = GuardianSystem()
    tenants = {}
    for app_id, model_name in (("alice", "lenet"), ("bob", "cifar10")):
        tenant = system.attach(app_id, max_bytes=64 << 20)
        libs = LibraryBundle.create(tenant.runtime)
        model = MODEL_ZOO[model_name](libs)
        data = dataset_for(model.input_shape, samples=24,
                           seed=hash(app_id) % 100)
        tenants[app_id] = (model, data)

    print("training two tenants through Guardian "
          "(bitwise fencing)...\n")
    for app_id, (model, data) in tenants.items():
        result = train(model, data, epochs=3, batch_size=8, lr=0.1)
        accuracy = evaluate(model, data).accuracy
        print(f"  {app_id:7s} {model.name:8s}  loss "
              f"{result.first_loss:.3f} -> {result.final_loss:.3f}  "
              f"accuracy {accuracy:.0%}")

    timeline = system.synchronize()
    server = system.server
    print(f"\nshared-GPU summary")
    print(f"  kernels launched (all tenants): "
          f"{system.device.metrics.kernels_launched}")
    print(f"  kernels patched offline:        "
          f"{server.stats.kernels_patched}")
    print(f"  transfers checked / rejected:   "
          f"{server.stats.transfers_checked} / "
          f"{server.stats.transfers_rejected}")
    print(f"  context switches:               "
          f"{timeline.context_switches} (spatial sharing)")
    for app_id in tenants:
        completion = timeline.completion_by_tag[app_id]
        print(f"  {app_id:7s} finished at "
              f"{system.device.spec.cycles_to_seconds(completion) * 1e3:.2f} ms"
              f" (device time)")


if __name__ == "__main__":
    main()
